"""Graceful degradation: stale-fixpoint serving when a source goes down.

A component with a :class:`ResiliencePolicy` keeps its last successful
output; when acquisition or evaluation fails it serves that copy marked
``stale="true"`` instead of failing the pipe.  Downstream, the change gate
must treat a stale snapshot as non-information: no delivery, no baseline
perturbation.
"""

from __future__ import annotations

import pytest

from repro import ResiliencePolicy, Session
from repro.api import ChangeDetector, SmsDeliverer, resilience_report
from repro.elog.parser import parse_elog
from repro.mdatalog import MonadicProgram
from repro.resilience import FaultPlan, FetchError, RetryPolicy, TransientFetchError
from repro.server.components import DatalogQueryComponent, WrapperComponent
from repro.server.monitoring import is_stale
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

FAST = ResiliencePolicy(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0))

PROGRAM = parse_elog(
    "book(S, X) <- document(_, S), subelem(S, ?.tr, X),"
    " contains(X, (?.td, [(class, title, exact)]))\n"
    "title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)"
)

ITALIC = MonadicProgram.parse(
    "italic(X) :- label_i(X). italic(X) :- italic(X0), firstchild(X0, X).",
    query_predicates=["italic"],
)

URL = "books-a.test/bestsellers"


@pytest.fixture
def web():
    site = SimulatedWeb()
    site.publish_many(bookstore_site(count=2, seed=3))
    return site


# ---------------------------------------------------------------------------
# WrapperComponent
# ---------------------------------------------------------------------------


def test_wrapper_serves_last_good_marked_stale_when_the_source_dies(web):
    component = WrapperComponent("books", PROGRAM, web, URL, resilience=FAST)
    good = component.process([])
    assert not is_stale(good)
    titles = [b.full_text() for b in good.find_all("book")]

    web.remove(URL)  # the source vanishes
    degraded = component.process([])
    assert is_stale(degraded)
    assert degraded.attributes["stale"] == "true"
    assert [b.full_text() for b in degraded.find_all("book")] == titles
    assert component.resilience_info().stale_served == 1

    # The cached copy is defensive: mutating a served snapshot cannot
    # corrupt the next degraded activation.
    degraded.children.clear()
    assert [b.full_text() for b in component.process([]).find_all("book")] == titles

    web.publish_many(bookstore_site(count=2, seed=3))  # the source recovers
    fresh = component.process([])
    assert not is_stale(fresh)


def test_wrapper_with_no_good_output_yet_still_raises(web):
    component = WrapperComponent(
        "books", PROGRAM, web, "vanished.test/page", resilience=FAST
    )
    with pytest.raises(FetchError):
        component.process([])


def test_wrapper_serve_stale_false_fails_the_pipe(web):
    component = WrapperComponent(
        "books", PROGRAM, web, URL, resilience=FAST.derive(serve_stale=False)
    )
    component.process([])
    web.remove(URL)
    with pytest.raises(FetchError):
        component.process([])
    assert component.resilience_info().stale_served == 0


def test_wrapper_without_a_policy_behaves_exactly_as_before(web):
    component = WrapperComponent("books", PROGRAM, web, URL)
    component.process([])
    web.remove(URL)
    with pytest.raises(KeyError):
        component.process([])
    assert component.resilience_info() is None


def test_wrapper_retries_transient_faults_through_the_policy(web):
    web.install_faults(FaultPlan().fail_transient(URL, times=2))
    component = WrapperComponent("books", PROGRAM, web, URL, resilience=FAST)
    result = component.process([])  # two injected failures, then success
    assert not is_stale(result) and result.find_all("book")
    info = component.resilience_info()
    assert (info.attempts, info.retries, info.stale_served) == (3, 2, 0)


# ---------------------------------------------------------------------------
# DatalogQueryComponent
# ---------------------------------------------------------------------------


class FlakySupplier:
    def __init__(self, document, fail_times=0):
        self.document = document
        self.fail_times = fail_times
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise TransientFetchError(f"supplier down (call {self.calls})")
        if self.document is None:
            raise ConnectionError("source offline")
        return self.document


def test_query_component_retries_its_supplier():
    supplier = FlakySupplier(tree(("doc", ("i",), ("a",))), fail_times=2)
    component = DatalogQueryComponent("italic", ITALIC, supplier, resilience=FAST)
    result = component.process([])
    assert supplier.calls == 3
    assert [r.name for r in result.children] == ["italic"]
    assert component.resilience_info().retries == 2


def test_query_component_serves_stale_after_a_good_run():
    supplier = FlakySupplier(tree(("doc", ("i",), ("a",))))
    component = DatalogQueryComponent("italic", ITALIC, supplier, resilience=FAST)
    good = component.process([])
    supplier.document = None  # now every call fails
    degraded = component.process([])
    assert is_stale(degraded)
    assert [r.attributes["node"] for r in degraded.find_all("italic")] == [
        r.attributes["node"] for r in good.find_all("italic")
    ]
    assert component.resilience_info().stale_served == 1


def test_query_component_without_policy_raises():
    supplier = FlakySupplier(None)
    component = DatalogQueryComponent("italic", ITALIC, supplier)
    with pytest.raises(ConnectionError):
        component.process([])
    assert component.resilience_info() is None


# ---------------------------------------------------------------------------
# The change gate under degradation
# ---------------------------------------------------------------------------


def _monitored_pipeline(web, session=None):
    from repro.api import Pipeline

    sms = SmsDeliverer("sms", "+43 123", summarise=lambda doc: doc.full_text())
    builder = Pipeline.builder("monitor", session=session, resilience=FAST)
    builder.wrapper("books", PROGRAM, web, URL)
    builder.deliver(
        sms,
        on_change=ChangeDetector("book", key="title"),
        message=lambda report: f"books changed: {report.summary()}",
    )
    return builder.build(), sms


def test_stale_outputs_do_not_fire_or_perturb_the_change_gate(web):
    pipeline, sms = _monitored_pipeline(web)
    gate = pipeline.component("sms_gate")

    pipeline.run()  # baseline observation, no delivery
    assert sms.deliveries == []

    web.update(URL, lambda html: html.replace("Monadic Tales", "Monadic Tales vol.2"))
    pipeline.run()  # a real change fires the deliverer
    assert len(sms.deliveries) == 1

    web.remove(URL)  # the source goes down: the wrapper serves stale
    results = pipeline.run()
    assert is_stale(results["books"])
    assert len(sms.deliveries) == 1  # stale != news: nothing fired
    assert gate.stale_skips == 1

    # The stale pass must not have perturbed the baseline: restoring the
    # *same* page yields no change report (nothing actually changed).
    web.publish_many(bookstore_site(count=2, seed=3))
    web.update(URL, lambda html: html.replace("Monadic Tales", "Monadic Tales vol.2"))
    fresh = pipeline.run()
    assert not is_stale(fresh["books"])
    assert len(sms.deliveries) == 1
    assert gate.stale_skips == 1


def test_pipeline_builder_threads_the_session_policy(web):
    session = Session(resilience=FAST)
    pipeline, _ = _monitored_pipeline(web, session=session)
    component = pipeline.component("books")
    assert component.resilience is FAST
    report = pipeline.resilience_report()
    assert set(report) == {"books"}  # gates/deliverers carry no policy
    assert report["books"].attempts == 0  # nothing ran yet


def test_resilience_report_across_a_whole_server(web):
    from repro.api import Pipeline, TransformationServer

    resilient = Pipeline.builder("res", resilience=FAST).wrapper(
        "books", PROGRAM, web, URL
    ).build()
    plain = Pipeline.builder("plain").wrapper(
        "books", PROGRAM, web, URL
    ).build()
    server = TransformationServer()
    server.register(resilient.pipe)
    server.register(plain.pipe)
    server.run_all()
    report = server.resilience_report()
    assert set(report) == {"res/books"}  # policy-less components are omitted
    assert report["res/books"].attempts == 1
    assert resilience_report(resilient) == {"books": report["res/books"]}


def test_is_stale_reads_the_marker_only():
    from repro.xmlgen.document import XmlElement

    fresh = XmlElement("root")
    assert not is_stale(fresh)
    fresh.attributes["stale"] = "true"
    assert is_stale(fresh)

"""The seeded chaos suite: storms of injected faults over real batch runs.

Every fault here comes from a seeded :class:`FaultPlan`, so a failing run
replays exactly — CI can randomise ``CHAOS_SEED`` (the environment
variable) and print the seed on failure, and a pinned default keeps the
default run deterministic.

The acceptance scenario: with ~20% injected transient fetch faults (each
fail-N-then-succeed with N < max_attempts, so all are recoverable) plus a
permanent-failure subset, a 500-document ``extract_many`` under
``on_error="collect"`` returns, for every recoverable document, output
byte-equal to the clean run — and an :class:`ErrorResult` carrying
attempt/elapsed metadata for the permanent failures *only*.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import ErrorResult, ResiliencePolicy, Session
from repro.automata import leaf_selector_automaton
from repro.datalog import parse_program
from repro.mdatalog import MonadicProgram
from repro.resilience import FaultPlan, PermanentFetchError, RetryPolicy
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.xmlgen.serializer import to_compact_xml

SEED = int(os.environ.get("CHAOS_SEED", "20260808"))

#: Zero-backoff, three attempts: injected fail-1/fail-2 sequences always
#: recover, and the storm burns no wall-clock sleeping.
POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0, seed=SEED),
    on_error="collect",
)

WRAPPER = "item(S, X) <- document(_, S), subelem(S, ?.p, X)"


def _publish(web, count):
    """``count`` one-record pages, each on its own host (so the per-host
    breaker sees independent sources, like a crawl across many sites)."""
    urls = []
    for i in range(count):
        url = f"doc-{i}.test/page"
        web.publish(url, f"<html><body><p>item {i} of seed {SEED}</p></body></html>")
        urls.append(url)
    return urls


def _storm(urls, rng, transient_share=0.2, permanent_share=0.05):
    """A seeded plan: ~``transient_share`` of the URLs flake recoverably
    (fail 1 or 2 times, always < max_attempts), a disjoint
    ``permanent_share`` are gone for good."""
    shuffled = list(urls)
    rng.shuffle(shuffled)
    n_transient = int(len(urls) * transient_share)
    n_permanent = int(len(urls) * permanent_share)
    recoverable = shuffled[:n_transient]
    permanent = shuffled[n_transient:n_transient + n_permanent]
    plan = FaultPlan(seed=SEED)
    for url in recoverable:
        plan.fail_transient(url, times=rng.choice([1, 2]))
    for url in permanent:
        plan.fail_permanent(url)
    return plan, set(recoverable), set(permanent)


def test_500_document_storm_collect_matches_the_clean_run_byte_for_byte():
    rng = random.Random(SEED)
    clean_web, faulty_web = SimulatedWeb(), SimulatedWeb()
    urls = _publish(clean_web, 500)
    _publish(faulty_web, 500)
    plan, recoverable, permanent = _storm(urls, rng)
    faulty_web.install_faults(plan)

    clean = Session().extract_many(WRAPPER, urls=urls, fetcher=clean_web)
    stormed_session = Session(resilience=POLICY)
    stormed = stormed_session.extract_many(WRAPPER, urls=urls, fetcher=faulty_web)

    assert len(stormed) == len(clean) == 500, f"seed={SEED}"
    for index, (url, clean_slot, slot) in enumerate(zip(urls, clean, stormed)):
        if url in permanent:
            # Permanent failures — and only they — come back as ErrorResults.
            assert isinstance(slot, ErrorResult), f"seed={SEED} url={url}"
            assert isinstance(slot.error, PermanentFetchError), f"seed={SEED}"
            assert slot.url == url and slot.index == index, f"seed={SEED}"
            assert slot.attempts == 1, f"seed={SEED}"  # no retry on permanent
            assert slot.elapsed_s >= 0.0, f"seed={SEED}"
        else:
            assert slot.ok, f"seed={SEED} url={url} unexpectedly failed: {slot!r}"
            assert to_compact_xml(slot.to_xml()) == to_compact_xml(
                clean_slot.to_xml()
            ), f"seed={SEED} url={url}"

    # The storm actually stormed: every recoverable URL injected >= 1
    # transient fault and the retry layer absorbed every one of them.
    assert plan.injected["transient"] >= len(recoverable), f"seed={SEED}"
    assert plan.injected["permanent"] == len(permanent), f"seed={SEED}"
    info = stormed_session.resilience_info()
    assert info.retries == plan.injected["transient"], f"seed={SEED}"
    assert info.errors_isolated == len(permanent), f"seed={SEED}"
    assert len(recoverable) == 100 and len(permanent) == 25


@pytest.mark.parametrize("max_workers", [1, 8])
@pytest.mark.parametrize("on_error", ["collect", "skip"])
def test_storm_matrix_over_on_error_and_workers(on_error, max_workers):
    rng = random.Random(SEED + 1)
    clean_web, faulty_web = SimulatedWeb(), SimulatedWeb()
    urls = _publish(clean_web, 120)
    _publish(faulty_web, 120)
    plan, _, permanent = _storm(urls, rng)
    faulty_web.install_faults(plan)

    clean = Session().extract_many(WRAPPER, urls=urls, fetcher=clean_web)
    expected_good = [
        to_compact_xml(slot.to_xml())
        for url, slot in zip(urls, clean)
        if url not in permanent
    ]

    stormed = Session(resilience=POLICY).extract_many(
        WRAPPER, urls=urls, fetcher=faulty_web,
        max_workers=max_workers, on_error=on_error,
    )
    good = [to_compact_xml(slot.to_xml()) for slot in stormed if slot.ok]
    assert good == expected_good, f"seed={SEED} workers={max_workers}"
    failures = [slot for slot in stormed if not slot.ok]
    if on_error == "skip":
        assert failures == [], f"seed={SEED}"
        assert len(stormed) == 120 - len(permanent), f"seed={SEED}"
    else:
        assert {slot.url for slot in failures} == permanent, f"seed={SEED}"


@pytest.mark.parametrize("backend", ["semi-naive", "monadic", "automata"])
@pytest.mark.parametrize("max_workers", [1, 8])
@pytest.mark.parametrize("on_error", ["collect", "skip"])
def test_query_many_storm_across_backends(backend, max_workers, on_error):
    rng = random.Random(SEED + 2)
    if backend == "semi-naive":
        program = parse_program(
            "reach(X, Y) :- edge(X, Y). reach(X, Y) :- reach(X, Z), edge(Z, Y)."
        )
        sources = [{"edge": {(1, 2), (2, i + 3)}} for i in range(40)]
        kwargs = {}
        key = "reach"
    else:
        shapes = [
            ("doc", ("i", ("b",)), ("a",)),
            ("doc", ("a",), ("i",)),
            ("doc", ("b", ("i", ("a",)))),
        ]
        sources = [tree(shapes[i % len(shapes)]) for i in range(40)]
        kwargs = {"labels": ("doc", "i", "b", "a")}
        key = "italic" if backend == "monadic" else "selected"
        if backend == "monadic":
            program = MonadicProgram.parse(
                """
                italic(X) :- label_i(X).
                italic(X) :- italic(X0), firstchild(X0, X).
                """,
                query_predicates=["italic"],
            )
        else:
            program = leaf_selector_automaton(("doc", "i", "b", "a"))

    session = Session()
    clean = session.query_many(program, sources, backend, **kwargs)
    poisoned_at = set(rng.sample(range(40), 8))
    poisoned = [
        object() if i in poisoned_at else source
        for i, source in enumerate(sources)
    ]
    stormed = session.query_many(
        program, poisoned, backend, max_workers=max_workers,
        on_error=on_error, **kwargs,
    )
    expected_good = [
        sorted(slot.tuples(key))
        for i, slot in enumerate(clean)
        if i not in poisoned_at
    ]
    good = [sorted(slot.tuples(key)) for slot in stormed if slot.ok]
    assert good == expected_good, f"seed={SEED} backend={backend}"
    if on_error == "collect":
        assert {slot.index for slot in stormed if not slot.ok} == poisoned_at
        assert all(slot.backend == backend for slot in stormed if not slot.ok)
    else:
        assert len(stormed) == 40 - len(poisoned_at), f"seed={SEED}"


def test_monitored_pipe_serves_stale_through_a_chaos_outage():
    from repro.api import ChangeDetector, Pipeline, SmsDeliverer, TransformationServer
    from repro.server.monitoring import is_stale

    web = SimulatedWeb()
    url = "doc-0.test/page"
    web.publish(url, "<html><body><p>status green</p></body></html>")
    sms = SmsDeliverer("sms", "+43 123", summarise=lambda doc: doc.full_text())
    pipeline = (
        Pipeline.builder("monitor", resilience=POLICY)
        .wrapper("status", WRAPPER, web, url)
        .deliver(sms, on_change=ChangeDetector("item", key="."))
        .build()
    )
    server = TransformationServer()
    server.register(pipeline.pipe)

    first = server.run_all()["monitor"]
    assert not is_stale(first["status"])

    # The source goes down hard mid-monitoring: the pipe keeps producing,
    # serving the last-good snapshot marked stale.
    web.install_faults(FaultPlan(seed=SEED).fail_permanent(url))
    degraded = server.run_all(on_error="collect")["monitor"]
    assert not isinstance(degraded, ErrorResult)
    assert is_stale(degraded["status"])
    assert degraded["status"].full_text() == first["status"].full_text()
    report = server.resilience_report()
    assert report["monitor/status"].stale_served == 1
    assert sms.deliveries == []  # a stale snapshot never fires the gate

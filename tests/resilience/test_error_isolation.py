"""Per-slot error isolation on the batch paths.

``Session.query_many`` / ``Session.extract_many`` and
``TransformationServer.run_all`` accept ``on_error="raise"|"skip"|"collect"``:
one poisoned slot must not abort the other N-1, and under ``"collect"`` the
failed slot comes back as an :class:`ErrorResult` in place, so result order
still matches the input order — sequential and ``max_workers=`` paths alike.
"""

from __future__ import annotations

import pytest

from repro import ErrorResult, ResiliencePolicy, Session
from repro.automata import leaf_selector_automaton
from repro.datalog import parse_program
from repro.mdatalog import MonadicProgram
from repro.resilience import FaultPlan, FetchError, RetryPolicy
from repro.resilience.policy import ResilienceStats
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

FAST = ResiliencePolicy(retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0))

REACH = parse_program("reach(X, Y) :- edge(X, Y). reach(X, Y) :- reach(X, Z), edge(Z, Y).")

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
"""


@pytest.fixture
def documents():
    return [
        tree(("doc", ("i", ("b",)), ("a",))),
        tree(("doc", ("a",), ("i",))),
        tree(("doc", ("b", ("i", ("a",))))),
    ]


@pytest.fixture
def web():
    site = SimulatedWeb()
    site.publish_many(bookstore_site(count=3, seed=7))
    return site


def _query_sources(backend, documents):
    if backend == "semi-naive":
        return [{"edge": {(1, 2), (2, 3), (3, i + 4)}} for i in range(3)]
    return list(documents)


def _query_kwargs(backend):
    if backend == "automata":
        return {"labels": ("doc", "i", "b", "a")}
    return {}


def _program(backend):
    if backend == "semi-naive":
        return REACH
    if backend == "monadic":
        return ITALIC
    return leaf_selector_automaton(("doc", "i", "b", "a"))


def _comparable(result):
    name = "reach" if result.backend == "semi-naive" else next(
        iter(result.predicates()), "selected"
    )
    return sorted(result.tuples(name))


# ---------------------------------------------------------------------------
# query_many
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["semi-naive", "monadic", "automata"])
@pytest.mark.parametrize("max_workers", [None, 8])
def test_query_many_isolates_the_poisoned_slot(backend, max_workers, documents):
    session = Session()
    good = _query_sources(backend, documents)
    clean = session.query_many(
        _program(backend), good, backend, max_workers=max_workers,
        **_query_kwargs(backend),
    )
    poisoned = [good[0], object(), good[1], good[2]]

    with pytest.raises(Exception):
        session.query_many(
            _program(backend), poisoned, backend, max_workers=max_workers,
            **_query_kwargs(backend),
        )

    collected = session.query_many(
        _program(backend), poisoned, backend, max_workers=max_workers,
        on_error="collect", **_query_kwargs(backend),
    )
    assert len(collected) == 4
    assert isinstance(collected[1], ErrorResult)
    assert collected[1].index == 1
    assert collected[1].backend == backend
    assert not collected[1].ok and collected[0].ok
    survivors = [slot for slot in collected if slot.ok]
    assert [_comparable(s) for s in survivors] == [_comparable(c) for c in clean]

    skipped = session.query_many(
        _program(backend), poisoned, backend, max_workers=max_workers,
        on_error="skip", **_query_kwargs(backend),
    )
    assert [_comparable(s) for s in skipped] == [_comparable(c) for c in clean]

    assert session.resilience_info().errors_isolated == 2


def test_query_many_rejects_unknown_on_error(documents):
    with pytest.raises(ValueError):
        Session().query_many(ITALIC, documents, on_error="explode")


def test_session_policy_sets_the_default_on_error(documents):
    session = Session(resilience=FAST.derive(on_error="collect"))
    slots = session.query_many(ITALIC, [documents[0], object()])
    assert isinstance(slots[1], ErrorResult)  # collected without a kwarg
    # An explicit on_error= still wins over the policy default.
    assert len(session.query_many(ITALIC, [documents[0], object()], on_error="skip")) == 1


# ---------------------------------------------------------------------------
# extract_many
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("max_workers", [None, 8])
def test_extract_many_url_failures_come_back_in_slot(web, max_workers):
    session = Session()
    urls = [
        "books-a.test/bestsellers",
        "gone.test/nowhere",
        "books-b.test/chart",
    ]
    with pytest.raises(FetchError):
        session.extract_many(WRAPPER, urls=urls, fetcher=web, max_workers=max_workers)

    collected = session.extract_many(
        WRAPPER, urls=urls, fetcher=web, max_workers=max_workers,
        on_error="collect",
    )
    assert [slot.ok for slot in collected] == [True, False, True]
    failure = collected[1]
    assert failure.url == "gone.test/nowhere"
    assert failure.index == 1
    assert isinstance(failure.error, FetchError)
    assert failure.backend == "elog"

    skipped = session.extract_many(
        WRAPPER, urls=urls, fetcher=web, max_workers=max_workers, on_error="skip"
    )
    assert [s.texts("title") for s in skipped] == [
        s.texts("title") for s in collected if s.ok
    ]


@pytest.mark.parametrize("max_workers", [None, 8])
def test_extract_many_document_failures_are_isolated_too(web, max_workers):
    session = Session()
    good = [web.fetch("books-a.test/bestsellers"), web.fetch("books-b.test/chart")]
    slots = session.extract_many(
        WRAPPER, documents=[good[0], object(), good[1]], max_workers=max_workers,
        on_error="collect",
    )
    assert [slot.ok for slot in slots] == [True, False, True]
    assert slots[1].index == 1
    clean = session.extract_many(WRAPPER, documents=good)
    assert [s.texts("title") for s in slots if s.ok] == [
        c.texts("title") for c in clean
    ]


def test_collected_fetch_errors_carry_retry_metadata(web):
    plan = FaultPlan().fail_transient("books-a", times=99)  # never recovers
    web.install_faults(plan)
    session = Session(resilience=FAST)
    slots = session.extract_many(
        WRAPPER, urls=["books-a.test/bestsellers", "books-b.test/chart"],
        fetcher=web, on_error="collect",
    )
    failure, success = slots
    assert not failure.ok and success.ok
    assert failure.attempts == 3  # the retry layer's annotation, not a default
    assert failure.elapsed_s >= 0.0
    info = session.resilience_info()
    assert info.retries == 2 and info.errors_isolated == 1


# ---------------------------------------------------------------------------
# run_all
# ---------------------------------------------------------------------------


def _server(web):
    from repro.api import Pipeline, TransformationServer

    good = Pipeline.builder("good").wrapper(
        "books", WRAPPER, web, "books-a.test/bestsellers"
    ).build()
    bad = Pipeline.builder("bad").wrapper(
        "books", WRAPPER, web, "vanished.test/page"
    ).build()
    server = TransformationServer()
    server.register(good.pipe)
    server.register(bad.pipe)
    return server


def test_run_all_isolates_failing_pipes(web):
    server = _server(web)
    with pytest.raises(FetchError):
        server.run_all()

    results = server.run_all(on_error="collect")
    assert set(results) == {"good", "bad"}
    assert isinstance(results["bad"], ErrorResult)
    assert results["bad"].url == "pipe:bad"
    assert results["good"]["books"].find_all("book")

    assert set(server.run_all(on_error="skip")) == {"good"}
    # Failed pipes still count as activations under skip/collect (the
    # aborted raise run logged nothing for the failing pipe).
    assert [name for _, name in server.run_log].count("bad") == 2

    with pytest.raises(ValueError):
        server.run_all(on_error="explode")


# ---------------------------------------------------------------------------
# ErrorResult
# ---------------------------------------------------------------------------


def test_error_result_quacks_like_an_empty_result():
    failure = ErrorResult(ValueError("boom"), url="a.test", attempts=2, elapsed_s=0.5)
    assert not failure.ok
    assert not failure  # falsy, so `if result:` guards read naturally
    assert failure.predicates() == frozenset()
    assert failure.tuples("x") == frozenset()
    assert failure.nodes("x") == () and failure.texts("x") == ()
    assert failure.count() == 0 and failure.count("x") == 0
    assert "x" not in failure
    assert "attempts=2" in repr(failure) and "a.test" in repr(failure)


def test_error_result_from_exception_honours_retry_annotations():
    error = ValueError("boom")
    error.resilience_attempts = 4
    error.resilience_elapsed_s = 1.25
    failure = ErrorResult.from_exception(error, index=3)
    assert failure.attempts == 4
    assert failure.elapsed_s == 1.25
    assert failure.index == 3
    bare = ErrorResult.from_exception(ValueError("plain"), elapsed_s=0.1)
    assert bare.attempts == 1 and bare.elapsed_s == 0.1


def test_resilience_stats_bump_is_validated_by_snapshot_fields():
    stats = ResilienceStats()
    stats.bump("stale_served", 3)
    assert stats.snapshot().stale_served == 3

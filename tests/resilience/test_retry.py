"""The retry loop, the circuit breaker and the resilient fetch boundary.

Clock and sleep are injected everywhere, so these tests drive logical time
and burn no wall-clock on backoffs or cooldowns.
"""

from __future__ import annotations

import pytest

from repro.html import parse_html
from repro.resilience import (
    CircuitOpenError,
    DeadlineExceeded,
    FaultPlan,
    FaultyFetcher,
    PermanentFetchError,
    ResiliencePolicy,
    ResilienceStats,
    ResilientFetcher,
    RetryPolicy,
    TransientFetchError,
    call_with_retry,
    is_transient,
)
from repro.resilience.retry import CircuitBreaker, host_of
from repro.web import StaticDocumentFetcher

FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)


class FakeClock:
    """Logical time: ``sleep`` advances the clock instead of waiting."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def flaky(failures, error_type=TransientFetchError):
    """A callable failing ``failures`` times, then returning ``"ok"``."""
    state = {"calls": 0}

    def call():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise error_type(f"boom #{state['calls']}")
        return "ok"

    call.state = state
    return call


# ---------------------------------------------------------------------------
# call_with_retry
# ---------------------------------------------------------------------------


def test_success_on_first_attempt_records_one_attempt_no_retries():
    stats = ResilienceStats()
    assert call_with_retry(flaky(0), FAST, stats=stats) == "ok"
    info = stats.snapshot()
    assert (info.attempts, info.retries, info.failures) == (1, 0, 0)


def test_fail_n_then_succeed_retries_transient_errors():
    stats = ResilienceStats()
    call = flaky(2)
    assert call_with_retry(call, FAST, stats=stats) == "ok"
    assert call.state["calls"] == 3
    info = stats.snapshot()
    assert (info.attempts, info.retries, info.failures) == (3, 2, 0)


def test_permanent_errors_propagate_from_the_first_attempt():
    stats = ResilienceStats()
    call = flaky(5, error_type=PermanentFetchError)
    with pytest.raises(PermanentFetchError) as caught:
        call_with_retry(call, FAST, stats=stats)
    assert call.state["calls"] == 1
    assert caught.value.resilience_attempts == 1
    assert stats.snapshot().failures == 1


def test_exhaustion_raises_the_last_error_annotated():
    call = flaky(99)
    with pytest.raises(TransientFetchError) as caught:
        call_with_retry(call, FAST)
    assert call.state["calls"] == 3
    assert caught.value.resilience_attempts == 3
    assert caught.value.resilience_elapsed_s >= 0.0
    assert "boom #3" in str(caught.value)


def test_builtin_transient_types_are_retried():
    assert is_transient(ConnectionError("reset"))
    assert is_transient(TimeoutError("slow"))
    assert not is_transient(ValueError("bug"))
    assert call_with_retry(flaky(1, error_type=ConnectionError), FAST) == "ok"


def test_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(
        max_attempts=5, backoff_base_s=0.1, backoff_multiplier=2.0,
        backoff_max_s=0.3, jitter=0.0,
    )
    naps = []
    with pytest.raises(TransientFetchError):
        call_with_retry(flaky(99), policy, sleep=naps.append)
    assert naps == pytest.approx([0.1, 0.2, 0.3, 0.3])
    # backoff_for is 2-based: no sleep before the first attempt.
    assert policy.backoff_for(1) == 0.0
    assert policy.backoff_for(4) == pytest.approx(0.3)


def test_jitter_is_seeded_and_shaves_at_most_the_jitter_fraction():
    policy = RetryPolicy(max_attempts=4, backoff_base_s=0.1, jitter=0.2, seed=5)

    def naps_of(label):
        naps = []
        with pytest.raises(TransientFetchError):
            call_with_retry(flaky(99), policy, label=label, sleep=naps.append)
        return naps

    first, second = naps_of("u.test"), naps_of("u.test")
    assert first == second  # deterministic per (seed, label, attempt)
    for nap, nominal in zip(first, [0.1, 0.2, 0.4]):
        assert nominal * 0.8 <= nap <= nominal
    assert naps_of("other.test") != first  # streams differ per label


def test_deadline_bounds_the_whole_loop_and_carries_the_last_error():
    clock = FakeClock()
    policy = RetryPolicy(
        max_attempts=10, backoff_base_s=1.0, backoff_multiplier=2.0,
        backoff_max_s=10.0, jitter=0.0, deadline_s=2.5,
    )
    with pytest.raises(DeadlineExceeded) as caught:
        call_with_retry(
            flaky(99), policy, clock=clock, sleep=clock.sleep
        )
    # t=0 attempt 1 fails; sleep 1 -> t=1; attempt 2 fails; the 2s backoff
    # is clamped to the 1.5s remaining -> t=2.5; the deadline gate trips.
    assert clock.now == pytest.approx(2.5)
    assert isinstance(caught.value.__cause__, TransientFetchError)
    assert caught.value.resilience_attempts == 2
    assert isinstance(caught.value, KeyError)  # still a FetchError


def test_attempt_timeout_turns_a_late_success_into_a_transient_failure():
    clock = FakeClock()
    durations = iter([5.0, 0.1])

    def call():
        clock.now += next(durations)
        return "ok"

    policy = RetryPolicy(
        max_attempts=2, backoff_base_s=0.0, jitter=0.0, attempt_timeout_s=1.0
    )
    assert call_with_retry(call, policy, clock=clock, sleep=clock.sleep) == "ok"

    # Every attempt late: the loop exhausts with the timeout as last error.
    def always_slow():
        clock.now += 5.0
        return "ok"

    with pytest.raises(TimeoutError) as caught:
        call_with_retry(always_slow, policy, clock=clock, sleep=clock.sleep)
    assert caught.value.resilience_attempts == 2


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline_s=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(on_error="explode")
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_threshold=-1)
    derived = FAST.derive(max_attempts=7)
    assert derived.max_attempts == 7 and FAST.max_attempts == 3


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def test_breaker_opens_after_threshold_and_half_opens_after_cooldown():
    clock = FakeClock()
    stats = ResilienceStats()
    breaker = CircuitBreaker(3, 10.0, clock=clock, stats=stats)
    host = "down.test"

    for _ in range(2):
        breaker.record_failure(host)
    assert breaker.state_of(host) == "closed"
    breaker.record_failure(host)
    assert breaker.state_of(host) == "open"
    assert stats.snapshot().breaker_trips == 1

    with pytest.raises(CircuitOpenError) as caught:
        breaker.check(host, "down.test/page")
    assert caught.value.host == host
    assert stats.snapshot().breaker_rejections == 1

    clock.now += 10.0
    assert breaker.state_of(host) == "half-open"
    breaker.check(host)  # the probe is let through
    breaker.record_success(host)
    assert breaker.state_of(host) == "closed"


def test_breaker_failed_probe_reopens_for_another_cooldown():
    clock = FakeClock()
    stats = ResilienceStats()
    breaker = CircuitBreaker(2, 5.0, clock=clock, stats=stats)
    breaker.record_failure("h")
    breaker.record_failure("h")
    clock.now += 5.0
    breaker.check("h")  # half-open probe allowed
    breaker.record_failure("h")  # probe fails: re-open immediately
    assert breaker.state_of("h") == "open"
    assert stats.snapshot().breaker_trips == 2
    with pytest.raises(CircuitOpenError):
        breaker.check("h")


def test_breaker_is_per_host_and_threshold_zero_disables():
    breaker = CircuitBreaker(1, 60.0)
    breaker.record_failure("bad.test")
    with pytest.raises(CircuitOpenError):
        breaker.check("bad.test")
    breaker.check("good.test")  # unaffected host

    disabled = CircuitBreaker(0, 60.0)
    for _ in range(10):
        disabled.record_failure("h")
    disabled.check("h")
    assert disabled.state_of("h") == "closed"


def test_host_of_strips_scheme_and_path():
    assert host_of("https://Books.Test/bestsellers") == "books.test"
    assert host_of("http://a.test/x/y") == "a.test"
    assert host_of("a.test") == "a.test"
    assert host_of(" a.test/x ") == "a.test"


# ---------------------------------------------------------------------------
# ResilientFetcher
# ---------------------------------------------------------------------------


def _static(urls):
    document = parse_html("<body><p>x</p></body>")
    return StaticDocumentFetcher({url: document for url in urls})


def test_resilient_fetcher_recovers_from_fail_n_then_succeed():
    plan = FaultPlan().fail_transient("a.test", times=2)
    policy = ResiliencePolicy(retry=FAST)
    fetcher = ResilientFetcher(FaultyFetcher(_static(["a.test"]), plan), policy)
    assert fetcher.fetch("a.test/page").find_first("p") is not None
    info = fetcher.info()
    assert (info.attempts, info.retries, info.failures) == (3, 2, 0)


def test_resilient_fetcher_gives_permanent_errors_one_attempt():
    fetcher = ResilientFetcher(_static(["a.test"]), ResiliencePolicy(retry=FAST))
    with pytest.raises(PermanentFetchError) as caught:
        fetcher.fetch("missing.test")
    assert caught.value.resilience_attempts == 1
    assert fetcher.info().failures == 1


def test_resilient_fetcher_trips_the_breaker_then_rejects_fast():
    clock = FakeClock()
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0, jitter=0.0),
        breaker_threshold=2,
        breaker_cooldown_s=30.0,
    )
    base = _static(["alive.test"])
    fetcher = ResilientFetcher(base, policy, sleep=clock.sleep, clock=clock)
    for _ in range(2):
        with pytest.raises(PermanentFetchError):
            fetcher.fetch("dead.test/page")
    assert fetcher.breaker.state_of("dead.test") == "open"
    with pytest.raises(CircuitOpenError):
        fetcher.fetch("dead.test/page")
    info = fetcher.info()
    assert info.breaker_trips == 1
    assert info.breaker_rejections == 1
    # Other hosts keep flowing while dead.test cools down.
    assert fetcher.fetch("alive.test").find_first("p") is not None
    # After the cooldown the probe goes through (and here succeeds).
    clock.now += 30.0
    base._documents["dead.test/page"] = parse_html("<body><p>back</p></body>")
    assert fetcher.fetch("dead.test/page") is not None
    assert fetcher.breaker.state_of("dead.test") == "closed"


def test_resilient_fetcher_fetch_async_retries_on_the_pool():
    from concurrent.futures import ThreadPoolExecutor

    plan = FaultPlan().fail_transient("a.test", times=1)
    fetcher = ResilientFetcher(
        FaultyFetcher(_static(["a.test"]), plan), ResiliencePolicy(retry=FAST)
    )
    with ThreadPoolExecutor(max_workers=2) as pool:
        assert fetcher.fetch_async("a.test", pool).result() is not None
    assert fetcher.info().retries == 1


def test_shared_stats_aggregate_across_fetchers():
    stats = ResilienceStats()
    policy = ResiliencePolicy(retry=FAST)
    for _ in range(2):
        plan = FaultPlan().fail_transient("*", times=1)
        wrapped = ResilientFetcher(
            FaultyFetcher(_static(["a.test"]), plan), policy, stats=stats
        )
        wrapped.fetch("a.test")
    info = stats.snapshot()
    assert (info.attempts, info.retries) == (4, 2)
    stats.clear()
    assert stats.snapshot().attempts == 0

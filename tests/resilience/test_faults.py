"""Deterministic fault injection: FaultPlan rules and FaultyFetcher.

Everything here must be replayable — the same seed and the same fetch
sequence produce the same faults, whatever the thread interleaving across
URLs.  A chaos run that cannot be replayed is a flake generator.
"""

from __future__ import annotations

import pytest

from repro.html import parse_html
from repro.resilience import (
    FaultPlan,
    FaultyFetcher,
    FetchError,
    PermanentFetchError,
    TransientFetchError,
)
from repro.web import StaticDocumentFetcher


def _static(urls):
    document = parse_html("<body><p>x</p></body>")
    return StaticDocumentFetcher({url: document for url in urls})


# ---------------------------------------------------------------------------
# Rule semantics
# ---------------------------------------------------------------------------


def test_fail_transient_fires_on_the_first_n_fetches_only():
    plan = FaultPlan().fail_transient("shop.test", times=2)
    first = plan.decide("shop.test/list")
    second = plan.decide("shop.test/list")
    third = plan.decide("shop.test/list")
    assert isinstance(first.error, TransientFetchError)
    assert isinstance(second.error, TransientFetchError)
    assert third.error is None
    assert plan.injected["transient"] == 2
    # Counters are per URL: a sibling page starts its own window.
    assert isinstance(plan.decide("shop.test/other").error, TransientFetchError)


def test_fail_transient_after_offsets_the_window():
    plan = FaultPlan().fail_transient("*", times=1, after=1)
    assert plan.decide("a.test").error is None
    assert isinstance(plan.decide("a.test").error, TransientFetchError)
    assert plan.decide("a.test").error is None


def test_fail_permanent_fires_forever_and_is_a_key_error():
    plan = FaultPlan().fail_permanent("gone.test")
    for _ in range(3):
        error = plan.decide("gone.test/page").error
        assert isinstance(error, PermanentFetchError)
        assert isinstance(error, FetchError)
        assert isinstance(error, KeyError)  # the pre-resilience contract
        assert error.url == "gone.test/page"
    assert plan.injected["permanent"] == 3
    assert plan.decide("alive.test").error is None


def test_first_failing_rule_wins_but_latency_accumulates():
    plan = (
        FaultPlan()
        .add_latency("slow.test", 0.5)
        .add_latency("slow.test", 0.25)
        .fail_permanent("slow.test")
        .fail_transient("slow.test", times=9)
    )
    decision = plan.decide("slow.test")
    assert decision.delay_s == pytest.approx(0.75)
    assert isinstance(decision.error, PermanentFetchError)  # first rule wins
    assert plan.injected == {"transient": 0, "permanent": 1, "latency": 1}


def test_latency_window_and_unmatched_urls():
    plan = FaultPlan().add_latency("slow.test", 0.1, times=1, after=1)
    assert plan.decide("slow.test").delay_s == 0.0
    assert plan.decide("slow.test").delay_s == pytest.approx(0.1)
    assert plan.decide("slow.test").delay_s == 0.0
    assert plan.decide("fast.test").delay_s == 0.0


def test_pattern_is_substring_and_star_matches_all():
    plan = FaultPlan().fail_permanent("books")
    assert plan.decide("a.test/books/1").error is not None
    assert plan.decide("a.test/music/1").error is None
    star = FaultPlan().fail_transient("*", times=1)
    assert star.decide("anything.test").error is not None


def test_rule_validation():
    with pytest.raises(ValueError):
        FaultPlan().fail_transient(times=0)
    with pytest.raises(ValueError):
        FaultPlan().add_latency("*", -0.1)
    with pytest.raises(ValueError):
        FaultPlan().fail_rate(1.5)


def test_fetch_count_tracks_adjudications():
    plan = FaultPlan()
    assert plan.fetch_count("a.test") == 0
    plan.decide("a.test")
    plan.decide("a.test")
    assert plan.fetch_count("a.test") == 2
    assert plan.fetch_count("b.test") == 0


# ---------------------------------------------------------------------------
# Seeded rate faults
# ---------------------------------------------------------------------------


def test_fail_rate_is_deterministic_per_seed():
    urls = [f"site-{i}.test/page" for i in range(40)]

    def decisions(seed):
        plan = FaultPlan(seed=seed).fail_rate(0.5)
        return [plan.decide(url).error is not None for url in urls for _ in range(3)]

    assert decisions(7) == decisions(7)  # replayable
    assert any(decisions(7))  # the storm actually storms
    assert not all(decisions(7))  # ... but is not a blackout


def test_fail_rate_hits_roughly_the_requested_rate():
    plan = FaultPlan(seed=3).fail_rate(0.2)
    hits = sum(
        plan.decide(f"u-{i}.test").error is not None for i in range(500)
    )
    assert 50 <= hits <= 150  # 20% of 500, with generous slack


def test_fail_rate_max_failures_bounds_the_consecutive_streak():
    # rate=1.0 would fail forever; max_failures=2 guarantees the third
    # consecutive fetch of any URL passes — so a retry policy with
    # max_attempts > 2 always recovers.
    plan = FaultPlan(seed=1).fail_rate(1.0, max_failures=2)
    outcomes = [plan.decide("hot.test").error is not None for _ in range(6)]
    assert outcomes[:3] == [True, True, False]
    streak = 0
    for failed in outcomes:
        streak = streak + 1 if failed else 0
        assert streak <= 2


# ---------------------------------------------------------------------------
# FaultyFetcher
# ---------------------------------------------------------------------------


def test_faulty_fetcher_injects_then_delegates():
    plan = FaultPlan().fail_transient("a.test", times=1)
    fetcher = FaultyFetcher(_static(["a.test"]), plan)
    with pytest.raises(TransientFetchError):
        fetcher.fetch("a.test")
    assert fetcher.fetch("a.test").find_first("p").normalized_text() == "x"


def test_faulty_fetcher_sleeps_injected_latency_through_the_hook():
    naps = []
    plan = FaultPlan().add_latency("a.test", 0.25, times=1)
    fetcher = FaultyFetcher(_static(["a.test"]), plan, sleep=naps.append)
    fetcher.fetch("a.test")
    fetcher.fetch("a.test")
    assert naps == [0.25]


def test_faulty_fetcher_fetch_async_runs_the_faulty_path():
    from concurrent.futures import ThreadPoolExecutor

    plan = FaultPlan().fail_permanent("gone.test")
    fetcher = FaultyFetcher(_static(["a.test"]), plan)
    with ThreadPoolExecutor(max_workers=1) as pool:
        good = fetcher.fetch_async("a.test", pool)
        bad = fetcher.fetch_async("gone.test", pool)
        assert good.result().find_first("p") is not None
        with pytest.raises(PermanentFetchError):
            bad.result()

"""Repo hygiene gates.

Two classes of slip have already cost a PR each:

* ``id()`` used as a cache key over objects the cache does not keep
  alive — CPython recycles addresses, so a dead object's key can serve a
  stranger's cached value (the pre-PR-5 extractor cache bug).  Every
  ``id(...)`` call in ``src/`` must appear in the allowlist below with a
  written justification of why *that* use cannot dangle.
* compiled artifacts committed to the index (``.pyc`` files rode along
  with the seed until PR 6).
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: Files allowed to call ``id(...)``, each with the reason the use is
#: sound.  The common shape: the dict/set keyed by ``id(node)`` lives
#: strictly shorter than the structure holding the nodes, so no key can
#: outlive its object.  Adding a new ``id(`` call to any other file must
#: come with an entry here explaining why it cannot dangle.
ALLOWED_ID_USES = {
    "repro/analysis/scan.py": (
        "docstring-node set used within a single AST walk of one source "
        "file; the parsed tree is alive for the whole scan"
    ),
    "repro/automata/ranked.py": (
        "per-run state tables over one binary tree; the tree outlives "
        "the run() call that builds and drops the table"
    ),
    "repro/cq/acyclic.py": (
        "visited-edge marker inside one GYO traversal; atoms are held "
        "by the query being traversed"
    ),
    "repro/datalog/engine.py": (
        "per-plan join memos; the plans are owned by the engine for its "
        "whole lifetime, so their ids are stable"
    ),
    "repro/elog/conditions.py": (
        "target-node set local to one condition evaluation over a live "
        "document"
    ),
    "repro/elog/extractor.py": (
        "(fingerprint, id(fetcher)) extractor-cache key: the cache entry "
        "holds a strong reference to the fetcher, so its id cannot be "
        "recycled while the entry exists"
    ),
    "repro/elog/instance_base.py": (
        "instance dedup key over member nodes the instance itself holds "
        "strong references to"
    ),
    "repro/html/render.py": (
        "node->text-span table for one rendered document; the document "
        "holds the nodes while the spans are in use"
    ),
    "repro/tree/document.py": (
        "ancestor set local to one range computation over a live "
        "document"
    ),
    "repro/tree/encoding.py": (
        "source->binary mapping built and consumed inside one encoding "
        "pass; it strongly references both trees"
    ),
    "repro/visual/region.py": (
        "span lookup over the region's own document; region and "
        "document share a lifetime"
    ),
    "repro/xpath/full.py": (
        "(step, node-index) memo; steps are owned by the compiled "
        "expression for its whole lifetime"
    ),
}


def _id_call_lines(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    ]


def _files_calling_id():
    return {
        str(path.relative_to(SRC)): lines
        for path in sorted(SRC.rglob("*.py"))
        if (lines := _id_call_lines(path))
    }


def test_every_id_call_is_allowlisted_with_a_reason():
    offenders = {
        file: lines
        for file, lines in _files_calling_id().items()
        if file not in ALLOWED_ID_USES
    }
    assert not offenders, (
        "id(...) used outside the allowlist (id-reuse hazard when used "
        f"as a cache key): {offenders}; if the use is sound, document "
        "why in ALLOWED_ID_USES"
    )


def test_the_allowlist_carries_no_stale_entries():
    calling = set(_files_calling_id())
    stale = set(ALLOWED_ID_USES) - calling
    assert not stale, f"allowlist entries for files that no longer call id(): {stale}"


def test_every_allowlist_reason_is_substantive():
    for file, reason in ALLOWED_ID_USES.items():
        assert len(reason.split()) >= 5, f"{file}: justification too thin"


def _tracked_files():
    completed = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO,
        capture_output=True,
        text=True,
        check=True,
    )
    return completed.stdout.splitlines()


def test_no_compiled_artifacts_are_tracked():
    tracked = _tracked_files()
    offenders = [
        name
        for name in tracked
        if name.endswith((".pyc", ".pyo")) or "__pycache__" in name
    ]
    assert not offenders, f"compiled artifacts tracked by git: {offenders}"


def test_the_gitignore_keeps_them_out():
    ignored = (REPO / ".gitignore").read_text(encoding="utf-8")
    assert "__pycache__" in ignored
    assert "*.pyc" in ignored or "*.py[cod]" in ignored

"""Repo hygiene gates.

Three classes of slip have already cost a PR each:

* ``id()`` used as a cache key over objects the cache does not keep
  alive — CPython recycles addresses, so a dead object's key can serve a
  stranger's cached value (the pre-PR-5 extractor cache bug).  Every
  ``id(...)`` call in ``src/`` must appear in the allowlist below with a
  written justification of why *that* use cannot dangle.
* unlocked writes to shared ``self._*`` caches — PR 5 found several
  session-scale memos mutated without their lock under concurrent server
  load.  Every subscript write to a ``self._*`` mapping outside a
  ``with self._lock``-style block must appear in
  ``ALLOWED_UNLOCKED_WRITES`` with the reason that structure cannot be
  shared across threads.
* compiled artifacts committed to the index (``.pyc`` files rode along
  with the seed until PR 6).
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: Files allowed to call ``id(...)``, each with the reason the use is
#: sound.  The common shape: the dict/set keyed by ``id(node)`` lives
#: strictly shorter than the structure holding the nodes, so no key can
#: outlive its object.  Adding a new ``id(`` call to any other file must
#: come with an entry here explaining why it cannot dangle.
ALLOWED_ID_USES = {
    "repro/analysis/scan.py": (
        "docstring-node set used within a single AST walk of one source "
        "file; the parsed tree is alive for the whole scan"
    ),
    "repro/automata/ranked.py": (
        "per-run state tables over one binary tree; the tree outlives "
        "the run() call that builds and drops the table"
    ),
    "repro/cq/acyclic.py": (
        "visited-edge marker inside one GYO traversal; atoms are held "
        "by the query being traversed"
    ),
    "repro/datalog/engine.py": (
        "per-plan join memos; the plans are owned by the engine for its "
        "whole lifetime, so their ids are stable"
    ),
    "repro/elog/conditions.py": (
        "target-node set local to one condition evaluation over a live "
        "document"
    ),
    "repro/elog/extractor.py": (
        "(fingerprint, id(fetcher)) extractor-cache key: the cache entry "
        "holds a strong reference to the fetcher, so its id cannot be "
        "recycled while the entry exists"
    ),
    "repro/elog/instance_base.py": (
        "instance dedup key over member nodes the instance itself holds "
        "strong references to"
    ),
    "repro/html/render.py": (
        "node->text-span table for one rendered document; the document "
        "holds the nodes while the spans are in use"
    ),
    "repro/tree/document.py": (
        "ancestor set local to one range computation over a live "
        "document"
    ),
    "repro/tree/encoding.py": (
        "source->binary mapping built and consumed inside one encoding "
        "pass; it strongly references both trees"
    ),
    "repro/visual/region.py": (
        "span lookup over the region's own document; region and "
        "document share a lifetime"
    ),
    "repro/xpath/full.py": (
        "(step, node-index) memo; steps are owned by the compiled "
        "expression for its whole lifetime"
    ),
}


def _id_call_lines(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    ]


def _files_calling_id():
    return {
        str(path.relative_to(SRC)): lines
        for path in sorted(SRC.rglob("*.py"))
        if (lines := _id_call_lines(path))
    }


def test_every_id_call_is_allowlisted_with_a_reason():
    offenders = {
        file: lines
        for file, lines in _files_calling_id().items()
        if file not in ALLOWED_ID_USES
    }
    assert not offenders, (
        "id(...) used outside the allowlist (id-reuse hazard when used "
        f"as a cache key): {offenders}; if the use is sound, document "
        "why in ALLOWED_ID_USES"
    )


def test_the_allowlist_carries_no_stale_entries():
    calling = set(_files_calling_id())
    stale = set(ALLOWED_ID_USES) - calling
    assert not stale, f"allowlist entries for files that no longer call id(): {stale}"


def test_every_allowlist_reason_is_substantive():
    for file, reason in ALLOWED_ID_USES.items():
        assert len(reason.split()) >= 5, f"{file}: justification too thin"


# ---------------------------------------------------------------------------
# Concurrency hygiene: writes to self._* mappings outside a lock
# ---------------------------------------------------------------------------

#: ``(file, attribute)`` pairs allowed to write ``self._attr[...]`` outside
#: a ``with self._lock`` block, each with the reason the structure cannot
#: race.  The common shapes: the object is owned by a single evaluation /
#: single caller for its whole life (engines, parsers, solvers), or every
#: caller of the writing helper already holds the lock (the scanner is
#: intra-procedural and cannot see that).  New unlocked writes anywhere
#: else must either take the lock or justify themselves here.
ALLOWED_UNLOCKED_WRITES = {
    ("repro/api/results.py", "_memo"): (
        "per-QueryResult lazy view memo; a result wrapper belongs to the "
        "caller that ran the query, while cross-thread session caches hold "
        "the immutable fixpoint, not these views"
    ),
    ("repro/datalog/engine.py", "_views"): (
        "EvaluationResult's lazy frozenset views; a result is consumed by "
        "the thread that evaluated it, engines are per-caller objects"
    ),
    ("repro/datalog/columns.py", "_postings"): (
        "columnar access paths are scratch storage inside one engine's "
        "single-threaded evaluate() pass; cross-thread caches hold only "
        "the materialised EvaluationResult, never these relations"
    ),
    ("repro/datalog/columns.py", "_posting_covered"): (
        "catch-up watermark for the posting columns above; same "
        "single-owner evaluation-scratch lifetime"
    ),
    ("repro/datalog/columns.py", "_composites"): (
        "composite-key indexes of the same single-threaded evaluation "
        "scratch storage as _postings"
    ),
    ("repro/datalog/columns.py", "_composite_covered"): (
        "catch-up watermark for the composite indexes above; same "
        "single-owner evaluation-scratch lifetime"
    ),
    ("repro/datalog/index.py", "_indexes"): (
        "relation indexes live in one engine's fact store and are built "
        "during that engine's single-threaded evaluate() pass"
    ),
    ("repro/datalog/ltur.py", "_atom_ids"): (
        "atom interning table local to one LTUR solver instance, built and "
        "run by a single caller"
    ),
    ("repro/elog/concepts.py", "_functions"): (
        "concept registration is configuration-time setup; a registry is "
        "populated before wrappers run, not mutated during evaluation"
    ),
    ("repro/resilience/retry.py", "_hosts"): (
        "written only inside _state(), whose every caller already holds "
        "self._lock; the intra-procedural scanner cannot see the callers"
    ),
    ("repro/server/pipeline.py", "_components"): (
        "pipes are assembled single-threaded at build time; the server "
        "only reads the component table while running"
    ),
    ("repro/server/pipeline.py", "_pipes"): (
        "TransformationServer registration happens during single-threaded "
        "setup before the tick loop starts"
    ),
    ("repro/tree/builder.py", "_stack"): (
        "parser work stack of one TreeBuilder; a builder parses one "
        "document for one caller and is then discarded"
    ),
    ("repro/web/fetcher.py", "_pages"): (
        "the in-memory test fetcher's page table is seeded by the test "
        "that owns it; published pages are fixtures, not shared state"
    ),
    ("repro/xpath/full.py", "_step_cache"): (
        "per-compiled-expression memo; an XPath evaluation runs on the "
        "thread that owns the expression instance"
    ),
    ("repro/xpath/full.py", "_condition_cache"): (
        "per-compiled-expression memo; same single-owner lifetime as the "
        "step cache above"
    ),
}

#: Methods whose unlocked writes are constructor-time by definition.
_EXEMPT_METHODS = ("__init__", "__post_init__")


def _mentions_lock(expression: ast.AST) -> bool:
    """True when ``expression`` names something lock-like (``self._lock``,
    ``self._rlock``, a bare ``lock`` variable, ...)."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Attribute) and "lock" in node.attr.lower():
            return True
        if isinstance(node, ast.Name) and "lock" in node.id.lower():
            return True
    return False


def _written_private_attr(target: ast.AST):
    """The ``_attr`` when ``target`` is a ``self._attr[...]`` subscript."""
    if not isinstance(target, ast.Subscript):
        return None
    value = target.value
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
        and value.attr.startswith("_")
    ):
        return value.attr
    return None


def _unlocked_write_sites(path: Path):
    """``(lineno, attr)`` for every unlocked ``self._attr[...]`` write."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offenders = []

    def walk(node, in_lock, in_exempt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            exempt = node.name in _EXEMPT_METHODS
            for child in node.body:
                walk(child, False, exempt)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = in_lock or any(
                _mentions_lock(item.context_expr) for item in node.items
            )
            for child in node.body:
                walk(child, locked, in_exempt)
            return
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            attr = _written_private_attr(target)
            if attr and not in_lock and not in_exempt:
                offenders.append((node.lineno, attr))
        for child in ast.iter_child_nodes(node):
            walk(child, in_lock, in_exempt)

    walk(tree, False, False)
    return offenders


def _files_with_unlocked_writes():
    found = {}
    for path in sorted(SRC.rglob("*.py")):
        for lineno, attr in _unlocked_write_sites(path):
            found.setdefault(
                (str(path.relative_to(SRC)), attr), []
            ).append(lineno)
    return found


def test_every_unlocked_cache_write_is_allowlisted_with_a_reason():
    offenders = {
        site: lines
        for site, lines in _files_with_unlocked_writes().items()
        if site not in ALLOWED_UNLOCKED_WRITES
    }
    assert not offenders, (
        "self._* mapping written outside a lock (concurrent-mutation "
        f"hazard under server load): {offenders}; take the lock or, if "
        "the structure is single-owner, document why in "
        "ALLOWED_UNLOCKED_WRITES"
    )


def test_the_unlocked_write_allowlist_carries_no_stale_entries():
    writing = set(_files_with_unlocked_writes())
    stale = set(ALLOWED_UNLOCKED_WRITES) - writing
    assert not stale, (
        f"allowlist entries for unlocked writes that no longer exist: {stale}"
    )


def test_every_unlocked_write_reason_is_substantive():
    for (file, attr), reason in ALLOWED_UNLOCKED_WRITES.items():
        assert len(reason.split()) >= 5, f"{file}:{attr}: justification too thin"


def _tracked_files():
    completed = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO,
        capture_output=True,
        text=True,
        check=True,
    )
    return completed.stdout.splitlines()


def test_no_compiled_artifacts_are_tracked():
    tracked = _tracked_files()
    offenders = [
        name
        for name in tracked
        if name.endswith((".pyc", ".pyo")) or "__pycache__" in name
    ]
    assert not offenders, f"compiled artifacts tracked by git: {offenders}"


def test_the_gitignore_keeps_them_out():
    ignored = (REPO / ".gitignore").read_text(encoding="utf-8")
    assert "__pycache__" in ignored
    assert "*.pyc" in ignored or "*.py[cod]" in ignored

"""Tests for the Elog Extractor on small hand-written pages."""

from __future__ import annotations

import pytest

from repro.elog import (
    AttributePath,
    ElementPath,
    ElogProgram,
    ElogRule,
    Extractor,
    SubAtt,
    SubElem,
    parse_elog,
)
from repro.html import parse_html
from repro.web import SimulatedWeb
from repro.xmlgen import to_xml


PAGE = """
<html><body>
  <h1>Catalogue</h1>
  <table class="products">
    <tr><td class="name"><a href="/p/1">Red lamp</a></td><td class="price">$ 15.00</td></tr>
    <tr><td class="name"><a href="/p/2">Green chair</a></td><td class="price">EUR 75.50</td></tr>
    <tr><td class="name">Blue table (no link)</td><td class="price">$ 120.00</td></tr>
  </table>
  <p>Contact: shop@example.test</p>
</body></html>
"""


@pytest.fixture
def page():
    return parse_html(PAGE, url="shop.example.test/catalogue")


def test_basic_tree_extraction(page):
    program = parse_elog(
        """
        row(S, X)  <- document(_, S), subelem(S, ?.tr, X)
        name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
        """
    )
    base = Extractor(program).extract(document=page)
    assert base.count("row") == 3
    assert base.count("name") == 3
    names = base.values_of("name")
    assert names == ["Red lamp", "Green chair", "Blue table (no link)"]


def test_hierarchy_in_instance_base(page):
    program = parse_elog(
        """
        row(S, X)   <- document(_, S), subelem(S, ?.tr, X)
        price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
        """
    )
    base = Extractor(program).extract(document=page)
    rows = base.instances_of("row")
    assert all(len(row.find_all("price")) == 1 for row in rows)
    xml = to_xml(base.to_xml(root_name="catalogue"))
    assert xml.count("<row>") == 3
    assert "$ 15.00" in xml


def test_string_and_attribute_extraction(page):
    program = parse_elog(
        r"""
        row(S, X)    <- document(_, S), subelem(S, ?.tr, X)
        link(S, X)   <- row(_, S), subelem(S, ?.a, X)
        url(S, X)    <- link(_, S), subatt(S, href, X)
        contact(S, X)<- document(_, S), subtext(S, [A-Za-z.]+@[A-Za-z.]+, X)
        """
    )
    base = Extractor(program).extract(document=page)
    assert base.values_of("url") == ["/p/1", "/p/2"]
    assert base.values_of("contact") == ["shop@example.test"]


def test_concept_condition_filters_prices(page):
    program = parse_elog(
        r"""
        row(S, X)   <- document(_, S), subelem(S, ?.tr, X)
        cell(S, X)  <- row(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
        """
    )
    base = Extractor(program).extract(document=page)
    assert base.count("cell") == 3
    assert all("$" in value or "EUR" in value for value in base.values_of("cell"))


def test_contains_and_notcontains_conditions(page):
    program = parse_elog(
        """
        row(S, X)      <- document(_, S), subelem(S, ?.tr, X)
        linked(S, X)   <- row(_, S), subelem(S, ?.td, X), contains(X, .a)
        unlinked(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X), notcontains(X, .a)
        """
    )
    base = Extractor(program).extract(document=page)
    assert base.count("linked") == 2
    assert base.values_of("unlinked") == ["Blue table (no link)"]


def test_before_after_and_firstsubtree(page):
    program = parse_elog(
        """
        row(S, X)    <- document(_, S), subelem(S, ?.tr, X)
        second(S, X) <- row(_, S), subelem(S, ?.td, X), before(S, X, .td, 0, 5, _, _)
        first(S, X)  <- row(_, S), subelem(S, ?.td, X), firstsubtree(S, X)
        last(S, X)   <- row(_, S), subelem(S, ?.td, X), notafter(S, X, .td, 0, 100)
        """
    )
    base = Extractor(program).extract(document=page)
    # "second": tds that have a td before them = the price cells
    assert base.count("second") == 3
    assert all("$" in v or "EUR" in v for v in base.values_of("second"))
    # "first": exactly one td per row (the first one)
    assert base.count("first") == 3
    assert "Red lamp" in base.values_of("first")[0]
    # "last": tds with no td after them = the price cells again
    assert base.count("last") == 3


def test_specialisation_rule(page):
    program = parse_elog(
        """
        cell(S, X)   <- document(_, S), subelem(S, ?.td, X)
        pricecell(S, X) <- cell(S, X), contains(X, (#text, [(elementtext, $, substr)]))
        """
    )
    base = Extractor(program).extract(document=page)
    assert base.count("cell") == 6
    assert base.count("pricecell") == 2  # the two $-prices


def test_crawling_via_document_variable():
    web = SimulatedWeb()
    web.publish(
        "shop.test/list",
        """
        <body><ul>
          <li><a href="shop.test/item/1">one</a></li>
          <li><a href="shop.test/item/2">two</a></li>
        </ul></body>
        """,
    )
    web.publish("shop.test/item/1", "<body><h1>Item one</h1><p>$ 10</p></body>")
    web.publish("shop.test/item/2", "<body><h1>Item two</h1><p>$ 20</p></body>")
    program = parse_elog(
        """
        link(S, X)   <- document("shop.test/list", S), subelem(S, ?.a, X)
        itemurl(S, X)<- link(_, S), subatt(S, href, X)
        detailpage(S, X) <- itemurl(_, S), document(S, X), subelem(S, ?.body, X)
        title(S, X)  <- detailpage(_, S), subelem(S, ?.h1, X)
        """
    )
    base = Extractor(program, fetcher=web).extract(url="shop.test/list")
    assert base.count("link") == 2
    assert base.values_of("title") == ["Item one", "Item two"]
    assert any("item/1" in url for url in web.fetch_log)


def test_programmatic_rule_construction(page):
    program = ElogProgram()
    program.add_rule(
        ElogRule(
            pattern="row",
            parent="document",
            extraction=SubElem(path=ElementPath.parse("?.tr")),
        )
    )
    program.add_rule(
        ElogRule(
            pattern="anchor",
            parent="row",
            extraction=SubElem(path=ElementPath.parse("?.a")),
        )
    )
    program.add_rule(
        ElogRule(
            pattern="href",
            parent="anchor",
            extraction=SubAtt(path=AttributePath("href")),
        )
    )
    base = Extractor(program).extract(document=page)
    assert base.count("anchor") == 2
    assert base.values_of("href") == ["/p/1", "/p/2"]


def test_auxiliary_patterns_hidden_in_xml(page):
    program = parse_elog(
        """
        row(S, X)  <- document(_, S), subelem(S, ?.tr, X)
        name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
        """
    ).mark_auxiliary("row")
    xml_tree = Extractor(program).extract_to_xml(document=page, root_name="out")
    serialised = to_xml(xml_tree)
    assert "<row>" not in serialised
    assert serialised.count("<name>") == 3

"""Experiment E7: the Figure 5 eBay wrapper on synthetic eBay pages."""

from __future__ import annotations

import pytest

from repro.elog import Extractor, figure5_program, figure5_program_programmatic
from repro.html import parse_html
from repro.web import SimulatedWeb
from repro.web.sites.ebay import ebay_page, generate_items, perturb_layout, render_page
from repro.xmlgen import to_xml


@pytest.fixture
def items():
    return generate_items(8, seed=42)


@pytest.fixture
def web(items):
    simulated = SimulatedWeb()
    simulated.publish("www.ebay.com", render_page(items))
    return simulated


def extract(web):
    return Extractor(figure5_program(), fetcher=web).extract(url="www.ebay.com")


def test_tableseq_and_records(web, items):
    base = extract(web)
    assert base.count("tableseq") == 1
    assert base.count("record") == len(items)


def test_item_descriptions_match_ground_truth(web, items):
    base = extract(web)
    descriptions = base.values_of("itemdes")
    assert descriptions == [item.description for item in items]


def test_prices_and_currencies(web, items):
    base = extract(web)
    prices = base.values_of("price")
    assert len(prices) == len(items)
    for extracted, item in zip(prices, items):
        assert f"{item.price:.2f}" in extracted
    currencies = base.values_of("currency")
    assert len(currencies) == len(items)
    assert all(c in ("$", "EUR", "GBP") for c in currencies)


def test_bids_cells(web, items):
    base = extract(web)
    bids = base.values_of("bids")
    assert bids == [f"{item.bids} bids" for item in items]


def test_header_and_navigation_not_extracted(web):
    base = extract(web)
    for value in base.values_of("record"):
        assert "home" not in value  # the navigation table is not a record
    assert all("item price bids" not in value for value in base.values_of("record"))


def test_instance_hierarchy_and_xml(web, items):
    base = extract(web)
    records = base.instances_of("record")
    for record in records:
        assert len(record.find_all("itemdes")) == 1
        assert len(record.find_all("price")) == 1
        assert len(record.find_all("bids")) == 1
    xml = to_xml(base.to_xml(root_name="auctions", auxiliary=["tableseq"]))
    assert xml.count("<record>") == len(items)
    assert "<tableseq>" not in xml
    assert "<currency>" in xml


def test_programmatic_and_parsed_programs_agree(web):
    parsed = Extractor(figure5_program(), fetcher=web).extract(url="www.ebay.com")
    programmatic = Extractor(figure5_program_programmatic(), fetcher=web).extract(
        url="www.ebay.com"
    )
    for pattern in ("record", "itemdes", "price", "bids", "currency"):
        assert parsed.values_of(pattern) == programmatic.values_of(pattern)


def test_wrapper_is_robust_to_unrelated_layout_changes(items):
    """Experiment E18: schema-less wrappers survive unrelated page changes."""
    original = render_page(items)
    perturbed = perturb_layout(original, seed=3)
    assert original != perturbed
    program = figure5_program()
    base_original = Extractor(program).extract(document=parse_html(original, url="www.ebay.com"))
    base_perturbed = Extractor(program).extract(document=parse_html(perturbed, url="www.ebay.com"))
    for pattern in ("record", "itemdes", "price", "bids"):
        assert base_original.values_of(pattern) == base_perturbed.values_of(pattern)


def test_wrapper_scales_with_page_size():
    markup = ebay_page(count=60, seed=5)
    base = Extractor(figure5_program()).extract(
        document=parse_html(markup, url="www.ebay.com")
    )
    assert base.count("record") == 60
    assert base.count("price") == 60

"""Unit tests for condition evaluation and the pattern instance base."""

from __future__ import annotations

import pytest

from repro.elog import (
    AfterCondition,
    BeforeCondition,
    ComparisonCondition,
    ConceptCondition,
    ConditionContext,
    ContainsCondition,
    ElementPath,
    PatternInstance,
    PatternInstanceBase,
    PatternReference,
    evaluate_condition,
)
from repro.html import parse_html
from repro.xmlgen import to_xml


PAGE = """
<body>
  <table>
    <tr><td class="name">alpha</td><td class="price">$ 10</td><td class="bids">3 bids</td></tr>
  </table>
  <hr/>
  <p>tail</p>
</body>
"""


@pytest.fixture
def page():
    return parse_html(PAGE)


def context_for(page, target, bindings=None, base=None):
    return ConditionContext(
        document=page,
        parent_node=page.find_first("tr"),
        parent_nodes=None,
        target=target,
        bindings=bindings or {},
        instance_base=base,
    )


def test_before_condition_lists_all_witnesses(page):
    bids_td = page.find_all("td")[2]
    condition = BeforeCondition(path=ElementPath.parse(".td"), min_distance=0,
                                max_distance=100, bind="Y")
    results = evaluate_condition(condition, context_for(page, bids_td))
    assert len(results) == 2  # the name td and the price td both qualify
    bound_classes = {binding["Y"].get_attribute("class") for binding in results}
    assert bound_classes == {"name", "price"}


def test_before_distance_tolerances_and_negation(page):
    bids_td = page.find_all("td")[2]
    immediate = BeforeCondition(path=ElementPath.parse(".td"), min_distance=0, max_distance=0)
    assert len(evaluate_condition(immediate, context_for(page, bids_td))) == 1
    name_td = page.find_all("td")[0]
    # nothing precedes the first cell within the row ...
    none_before = BeforeCondition(path=ElementPath.parse(".td"))
    assert evaluate_condition(none_before, context_for(page, name_td)) == []
    # ... so the negated form succeeds for it and fails for the bids cell
    negated = BeforeCondition(path=ElementPath.parse(".td"), negated=True)
    assert evaluate_condition(negated, context_for(page, name_td)) == [{}]
    assert evaluate_condition(negated, context_for(page, bids_td)) == []


def test_after_condition_and_negation(page):
    name_td = page.find_all("td")[0]
    after = AfterCondition(path=ElementPath.parse(".td"), min_distance=0, max_distance=50)
    assert evaluate_condition(after, context_for(page, name_td))
    not_after = AfterCondition(path=ElementPath.parse(".img"), negated=True)
    assert evaluate_condition(not_after, context_for(page, name_td)) == [{}]


def test_contains_condition_with_binding(page):
    row = page.find_first("tr")
    condition = ContainsCondition(path=ElementPath.parse("(.td, [(class, price, exact)])"), bind="P")
    results = evaluate_condition(condition, context_for(page, row))
    assert len(results) == 1
    assert results[0]["P"].get_attribute("class") == "price"
    missing = ContainsCondition(path=ElementPath.parse(".video"))
    assert evaluate_condition(missing, context_for(page, row)) == []


def test_concept_and_comparison_conditions(page):
    price_td = page.find_all("td")[1]
    concept = ConceptCondition("isCurrency", "X")
    # the td text is "$ 10": the whole text is not a currency token but
    # contains the symbol, which the built-in accepts
    assert evaluate_condition(concept, context_for(page, price_td)) == [{}]
    negated = ConceptCondition("isCountry", "X", negated=True)
    assert evaluate_condition(negated, context_for(page, price_td)) == [{}]
    comparison = ComparisonCondition("lt", "X", "LIMIT")
    ok = evaluate_condition(comparison, context_for(page, price_td, bindings={"LIMIT": "20"}))
    assert ok == [{}]
    fail = evaluate_condition(comparison, context_for(page, price_td, bindings={"LIMIT": "5"}))
    assert fail == []


def test_pattern_reference_condition(page):
    base = PatternInstanceBase()
    root = base.add_document_root(page)
    price_td = page.find_all("td")[1]
    base.add_instance(PatternInstance(pattern="price", parent=root, node=price_td))
    reference = PatternReference("price", "Y")
    ok = evaluate_condition(
        reference, context_for(page, page.find_all("td")[2], bindings={"Y": price_td}, base=base)
    )
    assert ok == [{}]
    wrong = evaluate_condition(
        reference,
        context_for(page, page.find_all("td")[2], bindings={"Y": page.find_all("td")[0]}, base=base),
    )
    assert wrong == []


def test_instance_base_queries_and_duplicates(page):
    base = PatternInstanceBase()
    root = base.add_document_root(page, url="shop.test")
    row = page.find_first("tr")
    record = base.add_instance(PatternInstance(pattern="record", parent=root, node=row))
    assert record is not None
    duplicate = base.add_instance(PatternInstance(pattern="record", parent=root, node=row))
    assert duplicate is None
    base.add_instance(PatternInstance(pattern="price", parent=record, node=page.find_all("td")[1]))
    base.add_instance(PatternInstance(pattern="note", parent=record, value="string value"))
    assert base.count("record") == 1
    assert base.count() == 4  # document + record + price + note
    assert base.patterns() == ["document", "note", "price", "record"]
    assert base.values_of("note") == ["string value"]
    assert base.node_is_instance_of("price", page.find_all("td")[1])
    assert not base.node_is_instance_of("price", row)


def test_instance_base_xml_with_sequence_and_aux(page):
    base = PatternInstanceBase()
    root = base.add_document_root(page)
    cells = page.find_all("td")
    sequence = base.add_instance(
        PatternInstance(pattern="cells", parent=root, nodes=cells[:2])
    )
    base.add_instance(PatternInstance(pattern="first", parent=sequence, node=cells[0]))
    assert sequence.is_sequence_instance
    assert "alpha" in sequence.text()
    xml = to_xml(base.to_xml(root_name="out", auxiliary=["cells"]))
    assert "<cells>" not in xml
    assert "<first>alpha</first>" in xml

"""Tests for the Elog textual parser."""

from __future__ import annotations

import pytest

from repro.elog import (
    AfterCondition,
    BeforeCondition,
    ComparisonCondition,
    ConceptCondition,
    ContainsCondition,
    ElogSyntaxError,
    FirstSubtreeCondition,
    PatternReference,
    SubAtt,
    SubElem,
    SubSequence,
    SubText,
    figure5_program,
    parse_elog,
    parse_rule,
)


def test_parse_simple_rule():
    rule = parse_rule("price(S, X) <- record(_, S), subelem(S, ?.td, X), isCurrency(X).")
    assert rule.pattern == "price"
    assert rule.parent == "record"
    assert isinstance(rule.extraction, SubElem)
    assert rule.extraction.path.steps == ("?", "td")
    assert rule.conditions == (ConceptCondition("isCurrency", "X"),)


def test_parse_document_rule_with_subsq():
    rule = parse_rule(
        'tableseq(S, X) <- document("www.ebay.com/", S), '
        "subsq(S, (.body, []), (.table, []), (.table, []), X), "
        "before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _), "
        "after(S, X, .hr, 0, 0, _, _)"
    )
    assert rule.document is not None
    assert rule.document.url == "www.ebay.com/"
    assert isinstance(rule.extraction, SubSequence)
    assert rule.extraction.first.steps == ("table",)
    assert len(rule.conditions) == 2
    before, after = rule.conditions
    assert isinstance(before, BeforeCondition)
    assert before.max_distance == 0
    assert before.path.conditions[0].attribute == "elementtext"
    assert isinstance(after, AfterCondition)


def test_parse_pattern_reference_and_binding():
    rule = parse_rule(
        "bids(S, X) <- record(_, S), subelem(S, ?.td, X), "
        "before(S, X, .td, 0, 30, Y, _), price(_, Y)"
    )
    before = rule.conditions[0]
    assert isinstance(before, BeforeCondition)
    assert before.bind == "Y"
    reference = rule.conditions[1]
    assert isinstance(reference, PatternReference)
    assert reference.pattern == "price"
    assert reference.argument == "Y"


def test_parse_subtext_subatt_and_concepts():
    program = parse_elog(
        r"""
        currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)
        link(S, X) <- itemdes(_, S), subatt(S, href, X)
        """
    )
    assert isinstance(program.rules[0].extraction, SubText)
    assert isinstance(program.rules[1].extraction, SubAtt)
    assert program.rules[1].extraction.path.attribute == "href"


def test_parse_specialisation_rule():
    rule = parse_rule(
        "greentable(S, X) <- table(S, X), contains(X, (.td, [(color, green, exact)]), _)"
    )
    assert rule.is_specialisation()
    assert rule.parent == "table"
    assert isinstance(rule.conditions[0], ContainsCondition)


def test_parse_negated_conditions_and_comparisons():
    rule = parse_rule(
        "cheap(S, X) <- record(_, S), subelem(S, ?.td, X), "
        "notcontains(X, .img), not isCurrency(X), lt(X, Y)"
    )
    contains = rule.conditions[0]
    assert isinstance(contains, ContainsCondition) and contains.negated
    concept = rule.conditions[1]
    assert isinstance(concept, ConceptCondition) and concept.negated
    comparison = rule.conditions[2]
    assert isinstance(comparison, ComparisonCondition)
    assert comparison.operator == "lt"


def test_parse_firstsubtree():
    rule = parse_rule("first(S, X) <- record(_, S), subelem(S, ?.td, X), firstsubtree(S, X)")
    assert any(isinstance(c, FirstSubtreeCondition) for c in rule.conditions)


def test_parse_crawling_with_variable_url():
    rule = parse_rule("detail(S, X) <- itemurl(_, S), document(S, X), subelem(S, ?.h1, X)")
    # document(S, X) here uses a variable: treated as a crawling source
    assert rule.document is not None
    assert rule.document.is_variable


def test_multi_line_rules_without_dots():
    program = parse_elog(
        """
        record(S, X) <- tableseq(_, S),
                        subelem(S, .table, X)
        item(S, X) <- record(_, S), subelem(S, ?.td, X)
        """
    )
    assert len(program) == 2
    assert program.patterns() == ["record", "item"]


def test_parse_errors():
    with pytest.raises(ElogSyntaxError):
        parse_rule("just text")
    with pytest.raises(ElogSyntaxError):
        parse_rule("p(S, X) <- subelem(S, ?.td, X)")  # no parent, no document
    with pytest.raises(ElogSyntaxError):
        parse_rule("p(S, X) <- r(_, S), subelem(S, X)")  # wrong arity
    with pytest.raises(ElogSyntaxError):
        parse_rule("p(S, X) <- r(_, S), before(S, X)")  # missing path


def test_figure5_program_parses_to_expected_patterns():
    program = figure5_program()
    assert program.patterns() == [
        "tableseq", "record", "itemdes", "price", "bids", "currency",
    ]
    assert len(program) == 6
    rule_text = str(program)
    assert "subsq" in rule_text
    assert "isCurrency" in rule_text

"""Content keying of shared Elog interpreters (the id()-reuse fix).

Before PR 5 the interpreter memos — :func:`repro.server.components.
shared_extractor` and ``Session.wrapper`` — keyed entries by
``(id(program), id(fetcher))``.  Entry ids are only meaningful while the
keyed objects are alive; once CPython garbage-collects a program or fetcher
it recycles the address for the next allocation, so any identity-keyed
cache whose entry lifetime is decoupled from its key objects can serve an
interpreter for a *different* wrapper.  :class:`repro.elog.extractor.
ExtractorCache` keys by content (:func:`wrapper_fingerprint`) and verifies
every hit, which also fixes the subtler in-place-mutation staleness the
identity scheme could not even express.
"""

from __future__ import annotations

import gc
import platform
import threading

import pytest

from repro.elog import (
    ElogProgram,
    ExtractorCache,
    parse_elog,
    wrapper_fingerprint,
)
from repro.tree import tree
from repro.web import StaticDocumentFetcher

TEXT_A = """
title(S, X) <- document(_, S), subelem(S, ?.title, X)
"""

TEXT_B = """
price(S, X) <- document(_, S), subelem(S, ?.price, X)
"""


def fresh_program(text: str) -> ElogProgram:
    # A new ElogProgram object per call; rules are shared immutably enough
    # for keying purposes (the fingerprint reads only their text).
    return ElogProgram(rules=list(parse_elog(text).rules))


# ---------------------------------------------------------------------------
# The id()-reuse regression
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    platform.python_implementation() != "CPython",
    reason="id() address recycling is a CPython allocator behaviour",
)
def test_id_reuse_aliases_the_old_identity_key_but_not_the_content_key():
    """Force GC + id reuse: the old ``(id(program), id(fetcher))`` key
    collides for two *different* wrappers, the content key does not.

    This is the regression test the old keying fails: under it the two
    programs below are indistinguishable, so a memo entry surviving the
    first program would be served for the second.
    """
    fetcher = StaticDocumentFetcher({})
    rules_a = list(parse_elog(TEXT_A).rules)
    rules_b = list(parse_elog(TEXT_B).rules)

    # Many TEXT_A wrappers die; many same-shaped TEXT_B wrappers are then
    # allocated and kept alive — the allocator's free lists virtually
    # guarantee some TEXT_B program lands on a dead TEXT_A address.
    programs_a = [ElogProgram(rules=list(rules_a)) for _ in range(2000)]
    dead_addresses = {id(program) for program in programs_a}
    fingerprint_a = wrapper_fingerprint(programs_a[0])
    del programs_a
    gc.collect()
    candidates = [ElogProgram(rules=list(rules_b)) for _ in range(2000)]
    program_b = next(
        (candidate for candidate in candidates if id(candidate) in dead_addresses),
        None,
    )
    if program_b is None:
        pytest.skip("allocator recycled none of 2000 freed addresses")

    # The old keying cannot tell a dead TEXT_A wrapper from this live
    # TEXT_B wrapper: their (id(program), id(fetcher)) keys are equal...
    assert (id(program_b), id(fetcher)) in {
        (address, id(fetcher)) for address in dead_addresses
    }
    # ...while the content key distinguishes them unconditionally.
    assert wrapper_fingerprint(program_b) != fingerprint_a


def test_cache_never_serves_a_different_wrapper_after_gc_churn():
    """End-to-end: evictions + GC + address recycling can never alias."""
    cache = ExtractorCache(capacity=2)  # small: constant evictions
    texts = [TEXT_A, TEXT_B, TEXT_A.replace("title", "author"), TEXT_B.replace("price", "bids")]
    for round_ in range(50):
        text = texts[round_ % len(texts)]
        program = fresh_program(text)
        extractor = cache.get(program)
        assert wrapper_fingerprint(extractor.program) == wrapper_fingerprint(program)
        del program, extractor
        if round_ % 7 == 0:
            gc.collect()


# ---------------------------------------------------------------------------
# Content keying semantics
# ---------------------------------------------------------------------------


def test_content_equal_programs_share_one_interpreter():
    cache = ExtractorCache()
    first = cache.get(fresh_program(TEXT_A))
    second = cache.get(fresh_program(TEXT_A))
    assert first is second
    info = cache.info()
    assert info.hits == 1 and info.misses == 1


def test_different_fetchers_get_different_interpreters():
    cache = ExtractorCache()
    program = fresh_program(TEXT_A)
    document = tree(("html", ("title",)))
    fetcher_one = StaticDocumentFetcher({"http://a.test": document})
    fetcher_two = StaticDocumentFetcher({"http://a.test": document})
    assert cache.get(program, fetcher_one) is not cache.get(program, fetcher_two)
    assert cache.get(program, fetcher_one).fetcher is fetcher_one


def test_mutated_cached_program_is_never_served_stale():
    """In-place mutation moves the fingerprint; a content-equal fresh parse
    must get an interpreter matching *its* content, not the mutated one."""
    cache = ExtractorCache()
    original = fresh_program(TEXT_A)
    cached = cache.get(original)
    # Mutate the cached program in place: the entry under TEXT_A's
    # fingerprint now holds an interpreter whose program says otherwise.
    original.mark_auxiliary("title")
    fresh = fresh_program(TEXT_A)
    served = cache.get(fresh)
    assert served is not cached
    assert wrapper_fingerprint(served.program) == wrapper_fingerprint(fresh)
    # The verification failure was an interpreter *construction*, so the
    # counters classify it as a miss, never a hit.
    info = cache.info()
    assert info.hits == 0 and info.misses == 2
    # The mutated program keys separately and keeps flowing through.
    assert cache.get(original).program is original


def test_auxiliary_patterns_are_part_of_the_content_key():
    cache = ExtractorCache()
    plain = fresh_program(TEXT_A)
    marked = fresh_program(TEXT_A).mark_auxiliary("title")
    assert cache.get(plain) is not cache.get(marked)


def test_concurrent_cold_gets_build_one_interpreter():
    cache = ExtractorCache()
    program = fresh_program(TEXT_A)
    results = []
    lock = threading.Lock()
    barrier = threading.Barrier(8)

    def work() -> None:
        barrier.wait(timeout=10)
        extractor = cache.get(program)
        with lock:
            results.append(extractor)

    threads = [threading.Thread(target=work, daemon=True) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)
    assert len(results) == 8
    assert len({id(extractor) for extractor in results}) == 1

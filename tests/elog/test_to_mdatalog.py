"""Tests for the Elog- to monadic datalog translation."""

from __future__ import annotations

import pytest

from repro.elog import (
    ElogTranslationError,
    Extractor,
    parse_elog,
    pattern_predicate,
    to_monadic_datalog,
)
from repro.html import parse_html
from repro.mdatalog import MonadicTreeEvaluator


PAGE = """
<html><body>
  <div class="list">
    <table><tr><td><a href="/1">one</a></td><td>x</td></tr></table>
    <table><tr><td>two</td></tr></table>
  </div>
  <p><a href="/out">outside</a></p>
</body></html>
"""

PROGRAM_TEXT = """
block(S, X) <- document(_, S), subelem(S, ?.div, X)
row(S, X)   <- block(_, S), subelem(S, .table.tr, X)
cell(S, X)  <- row(_, S), subelem(S, ?.td, X)
link(S, X)  <- cell(_, S), subelem(S, .a, X)
"""


def test_translation_matches_extractor_node_sets():
    document = parse_html(PAGE)
    program = parse_elog(PROGRAM_TEXT)
    base = Extractor(program).extract(document=document)
    mdatalog = to_monadic_datalog(program)
    evaluator = MonadicTreeEvaluator(mdatalog)
    results = evaluator.evaluate(document)
    for pattern in ("block", "row", "cell", "link"):
        extracted = {id(node) for node in base.nodes_of(pattern)}
        selected = {id(node) for node in results[pattern_predicate(pattern)]}
        assert extracted == selected, pattern


def test_translation_handles_specialisation_rules():
    document = parse_html(PAGE)
    program = parse_elog(
        """
        cell(S, X) <- document(_, S), subelem(S, ?.td, X)
        special(S, X) <- cell(S, X)
        """
    )
    mdatalog = to_monadic_datalog(program)
    results = MonadicTreeEvaluator(mdatalog).evaluate(document)
    assert len(results[pattern_predicate("special")]) == len(results[pattern_predicate("cell")])


def test_translation_rejects_conditions_and_string_extraction():
    with_conditions = parse_elog(
        "price(S, X) <- document(_, S), subelem(S, ?.td, X), isCurrency(X)"
    )
    with pytest.raises(ElogTranslationError):
        to_monadic_datalog(with_conditions)
    with_subtext = parse_elog(r"t(S, X) <- document(_, S), subtext(S, \var[Y], X)")
    with pytest.raises(ElogTranslationError):
        to_monadic_datalog(with_subtext)


def test_translated_program_runs_on_linear_pipeline():
    program = parse_elog(PROGRAM_TEXT)
    mdatalog = to_monadic_datalog(program)
    assert MonadicTreeEvaluator(mdatalog).uses_ground_pipeline

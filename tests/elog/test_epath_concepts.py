"""Tests for element paths, text paths and concept predicates."""

from __future__ import annotations

import pytest

from repro.elog import (
    DEFAULT_CONCEPTS,
    AttributeCondition,
    ConceptRegistry,
    ElementPath,
    EPathSyntaxError,
    TextPath,
    parse_number,
)
from repro.elog.textpath import AttributePath
from repro.html import parse_html


@pytest.fixture
def page():
    return parse_html(
        """
        <body>
          <table class="items">
            <tr><td><a href="/1">alpha</a></td><td>$ 10.00</td></tr>
            <tr><td>beta</td><td>EUR 20.00</td></tr>
          </table>
          <div><p><span>deep</span></p></div>
        </body>
        """
    )


def test_parse_simple_paths():
    path = ElementPath.parse(".body.table")
    assert path.steps == ("body", "table")
    wildcard = ElementPath.parse("?.td")
    assert wildcard.steps == ("?", "td")
    star = ElementPath.parse(".table.*.td")
    assert star.steps == ("table", "*", "td")


def test_parse_path_with_conditions():
    path = ElementPath.parse("(?.td, [(elementtext, item, substr)])")
    assert path.steps == ("?", "td")
    assert path.conditions == (AttributeCondition("elementtext", "item", "substr"),)
    two = ElementPath.parse("(.table, [(class, items, exact), (id, x, substr)])")
    assert len(two.conditions) == 2


def test_parse_errors():
    with pytest.raises(EPathSyntaxError):
        ElementPath.parse("")
    with pytest.raises(EPathSyntaxError):
        ElementPath.parse(".td den!")
    with pytest.raises(EPathSyntaxError):
        ElementPath.parse("(.td, [(a, b, weird_mode)])")


def test_path_matching_semantics():
    path = ElementPath.parse("?.td")
    assert path.matches_path(["table", "tr", "td"])
    assert path.matches_path(["td"])
    assert not path.matches_path(["table", "tr"])
    direct = ElementPath.parse(".table.tr")
    assert direct.matches_path(["table", "tr"])
    assert not direct.matches_path(["table", "x", "tr"])
    double = ElementPath.parse("?.p.?.span")
    assert double.matches_path(["div", "p", "span"])
    assert double.matches_path(["p", "span"])
    assert not double.matches_path(["span", "p"])


def test_find_targets_direct_and_deep(page):
    body = page.find_first("body")
    tables = ElementPath.parse(".table").find_targets(body)
    assert len(tables) == 1
    tds = ElementPath.parse("?.td").find_targets(body)
    assert len(tds) == 4
    spans = ElementPath.parse("?.div.?.span").find_targets(body)
    assert len(spans) == 1


def test_attribute_conditions_on_targets(page):
    body = page.find_first("body")
    items_table = ElementPath.parse('(.table, [(class, items, exact)])').find_targets(body)
    assert len(items_table) == 1
    missing = ElementPath.parse('(.table, [(class, other, exact)])').find_targets(body)
    assert missing == []
    with_link = ElementPath.parse("(?.td, [(a, , substr)])").find_targets(body)
    assert len(with_link) == 1  # only the first td contains an <a>


def test_regvar_condition_binds_variable(page):
    body = page.find_first("body")
    path = ElementPath.parse(r"(?.td, [(elementtext, \var[Y].*, regvar)])")
    results = path.find_targets(body)
    bindings = {b["Y"] for _, b in results}
    assert "$" in bindings
    assert "EUR" in bindings or "alpha" in bindings


def test_match_target_rejects_non_descendants(page):
    body = page.find_first("body")
    div = page.find_first("div")
    path = ElementPath.parse("?.td")
    assert path.match_target(div, body) is None
    assert path.match_target(body, body) is None


def test_element_path_str_round_trip():
    text = "(?.td, [(elementtext, item, substr)])"
    path = ElementPath.parse(text)
    again = ElementPath.parse(str(path))
    assert again.steps == path.steps
    assert again.conditions == path.conditions


def test_text_path_matching(page):
    price_td = page.find_all("td")[1]
    matches = TextPath.parse(r"\var[Y]").find_matches(price_td)
    tokens = [value for value, _ in matches]
    assert "$" in tokens
    assert "10.00" in tokens
    amounts = TextPath.parse(r"\d+\.\d{2}").find_matches(price_td)
    assert [value for value, _ in amounts] == ["10.00"]


def test_attribute_path(page):
    anchor = page.find_first("a")
    assert AttributePath.parse("href").find_matches(anchor) == [("/1", {})]
    assert AttributePath.parse("missing").find_matches(anchor) == []


def test_builtin_concepts():
    assert DEFAULT_CONCEPTS.check("isCurrency", "$")
    assert DEFAULT_CONCEPTS.check("isCurrency", "EUR")
    assert not DEFAULT_CONCEPTS.check("isCurrency", "banana")
    assert DEFAULT_CONCEPTS.check("isCountry", "Austria")
    assert not DEFAULT_CONCEPTS.check("isCountry", "Atlantis")
    assert DEFAULT_CONCEPTS.check("isDate", "14.06.2004")
    assert DEFAULT_CONCEPTS.check("isDate", "June 14, 2004")
    assert not DEFAULT_CONCEPTS.check("isDate", "hello")
    assert DEFAULT_CONCEPTS.check("isNumber", "1,234.56")
    assert DEFAULT_CONCEPTS.check("isPrice", "$ 12.50")
    assert DEFAULT_CONCEPTS.check("isEmail", "info@lixto.com")
    assert DEFAULT_CONCEPTS.check("isFlightNumber", "OS 123")
    assert DEFAULT_CONCEPTS.check("isPercentage", "12.5 %")


def test_concept_registry_extension():
    registry = ConceptRegistry()
    registry.register_vocabulary("isColour", ["red", "green", "blue"])
    registry.register_regex("isPostcode", r"^\d{4}$", full_match=True)
    registry.register_function("isShort", lambda value: len(value) < 4)
    assert registry.check("isColour", "Green")
    assert not registry.check("isColour", "taupe")
    assert registry.check("isPostcode", "1040")
    assert registry.check("isShort", "ab")
    assert "isColour" in registry.names()
    with pytest.raises(KeyError):
        registry.check("isUnknown", "x")


def test_parse_number_variants():
    assert parse_number("1.234,56") == pytest.approx(1234.56)
    assert parse_number("1,234.56") == pytest.approx(1234.56)
    assert parse_number("$ 42") == pytest.approx(42)
    assert parse_number("12,5") == pytest.approx(12.5)
    assert parse_number("garbage") is None

"""The process executor wired into the batch APIs.

Scale-out must be a *transparent* knob: ``workers=`` on ``query_many`` /
``extract_many`` (and ``distrib=`` on ``run_all``) returns exactly what
the in-process paths return — same order, same ``on_error`` slot
semantics, same results — while actually running on worker processes.
These tests pin that contract plus the distrib accounting
(``distrib_info()``) and the option-validation errors.
"""

from __future__ import annotations

import pickle

import pytest

from repro import DistribOptions, Session
from repro.api import ErrorResult, Pipeline
from repro.datalog import parse_program
from repro.distrib import DistribInfo, DistribStats, resolve_distrib
from repro.mdatalog import MonadicProgram
from repro.resilience import PermanentFetchError
from repro.server import InformationPipe, PipelineError, TransformationServer
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.xmlgen import XmlElement
from repro.xmlgen.serializer import to_compact_xml

REACH = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = "item(S, X) <- document(_, S), subelem(S, ?.p, X)"

FAST = DistribOptions(workers=2, start_method="fork")


def chain_database(n: int):
    return {"edge": {(i, i + 1) for i in range(n)}}


def page(*texts: str) -> str:
    body = "".join(f"<p>{text}</p>" for text in texts)
    return f"<html><body>{body}</body></html>"


def publish_shop(web: SimulatedWeb, count: int) -> list:
    urls = []
    for i in range(count):
        url = f"shop.test/{i}"
        web.publish(url, page(f"alpha-{i}", f"beta-{i}"))
        urls.append(url)
    return urls


# ---------------------------------------------------------------------------
# query_many: process path mirrors the in-process path
# ---------------------------------------------------------------------------
def test_query_many_process_matches_sequential_in_order():
    program = parse_program(REACH)
    databases = [chain_database(n) for n in (2, 3, 4, 5, 6)]
    sequential = Session().query_many(program, databases)
    distributed = Session().query_many(program, databases, workers=FAST)
    assert len(distributed) == len(sequential)
    for got, want in zip(distributed, sequential):
        assert got.tuples("reach") == want.tuples("reach")


def test_query_many_process_handles_monadic_documents():
    docs = [
        tree(("doc", ("i", ("b",)), ("a",))),
        tree(("doc", ("a",), ("i",))),
        tree(("doc", ("b",))),
    ]
    sequential = Session().query_many(ITALIC, docs)
    distributed = Session().query_many(ITALIC, docs, workers=FAST)
    for got, want in zip(distributed, sequential):
        assert got.tuples("italic") == want.tuples("italic")


def test_query_many_process_accepts_a_generator_batch():
    program = parse_program(REACH)
    session = Session()
    stream = (chain_database(n) for n in (2, 3, 4))
    results = session.query_many(program, stream, workers=FAST)
    assert [len(r.tuples("reach")) for r in results] == [3, 6, 10]


def test_query_many_process_records_distrib_counters():
    session = Session()
    results = session.query_many(
        parse_program(REACH),
        [chain_database(n) for n in (2, 3, 4)],
        workers=FAST,
    )
    assert len(results) == 3
    info = session.distrib_info()
    assert info.tasks_dispatched == 3
    assert info.tasks_acked == 3
    assert info.tasks_requeued == 0 and info.worker_crashes == 0
    assert info.queue_depth == 0


def test_workers_compile_each_program_once_not_once_per_document():
    session = Session()
    session.query_many(
        parse_program(REACH),
        [chain_database(n) for n in range(2, 10)],
        workers=FAST,
    )
    info = session.distrib_info()
    # 8 documents over 2 workers: every worker reports exactly one compile.
    assert info.worker_compiles
    assert all(count == 1 for _, count in info.worker_compiles)


def test_in_process_paths_leave_distrib_counters_untouched():
    session = Session()
    program = parse_program(REACH)
    databases = [chain_database(3), chain_database(4)]
    plain = session.query_many(program, databases)
    threaded = session.query_many(program, databases, max_workers=2)
    for got, want in zip(threaded, plain):
        assert got.tuples("reach") == want.tuples("reach")
    assert session.distrib_info() == DistribInfo()


# ---------------------------------------------------------------------------
# extract_many: documents, urls, and the on_error matrix
# ---------------------------------------------------------------------------
def test_extract_many_process_matches_sequential_byte_for_byte():
    web = SimulatedWeb()
    urls = publish_shop(web, 6)
    sequential = Session().extract_many(WRAPPER, urls=urls, fetcher=web)
    distributed = Session().extract_many(
        WRAPPER, urls=urls, fetcher=web, workers=FAST
    )
    for got, want in zip(distributed, sequential):
        assert to_compact_xml(got.to_xml()) == to_compact_xml(want.to_xml())


def test_extract_many_process_on_error_collect_fills_the_failed_slot():
    web = SimulatedWeb()
    urls = publish_shop(web, 3)
    urls.insert(1, "missing.test/404")  # never published: permanent error
    session = Session()
    results = session.extract_many(
        WRAPPER, urls=urls, fetcher=web, workers=FAST, on_error="collect"
    )
    assert len(results) == 4
    assert results[0].ok and results[2].ok and results[3].ok
    slot = results[1]
    assert isinstance(slot, ErrorResult) and not slot.ok
    assert slot.url == "missing.test/404"
    assert isinstance(slot.error, PermanentFetchError)


def test_extract_many_process_on_error_skip_drops_the_failed_slot():
    web = SimulatedWeb()
    urls = publish_shop(web, 2)
    results = Session().extract_many(
        WRAPPER,
        urls=[urls[0], "missing.test/404", urls[1]],
        fetcher=web,
        workers=FAST,
        on_error="skip",
    )
    assert len(results) == 2
    assert all(result.ok for result in results)


def test_extract_many_process_on_error_raise_surfaces_the_first_failure():
    web = SimulatedWeb()
    urls = publish_shop(web, 2)
    with pytest.raises(PermanentFetchError):
        Session().extract_many(
            WRAPPER,
            urls=[urls[0], "missing.test/404", urls[1]],
            fetcher=web,
            workers=FAST,
            on_error="raise",
        )


def test_extract_many_process_mixes_documents_and_urls_in_order():
    from repro.html.parser import parse_html

    web = SimulatedWeb()
    urls = publish_shop(web, 2)
    docs = [parse_html(page("local-a")), parse_html(page("local-b"))]
    results = Session().extract_many(
        WRAPPER, docs, urls=urls, fetcher=web, workers=FAST
    )
    texts = [result.texts("item") for result in results]
    assert texts[0] == ("local-a",)
    assert texts[1] == ("local-b",)
    assert texts[2] == ("alpha-0", "beta-0")
    assert texts[3] == ("alpha-1", "beta-1")


# ---------------------------------------------------------------------------
# The workers= knob and its validation
# ---------------------------------------------------------------------------
def test_resolve_distrib_accepts_the_three_spellings():
    assert resolve_distrib("process") == DistribOptions()
    assert resolve_distrib(3) == DistribOptions(workers=3)
    options = DistribOptions(workers=1, max_requeues=0)
    assert resolve_distrib(options) is options


@pytest.mark.parametrize("bad", ["threads", True, 1.5, object()])
def test_resolve_distrib_rejects_other_spellings(bad):
    with pytest.raises(ValueError, match="workers"):
        resolve_distrib(bad)


def test_distrib_options_validate_their_knobs():
    with pytest.raises(ValueError, match="workers"):
        DistribOptions(workers=0)
    with pytest.raises(ValueError, match="max_requeues"):
        DistribOptions(max_requeues=-1)
    with pytest.raises(ValueError, match="window_per_worker"):
        DistribOptions(window_per_worker=0)
    with pytest.raises(ValueError, match="start_method"):
        DistribOptions(start_method="greenlet")


def test_distrib_stats_snapshot_starts_empty():
    assert DistribStats().snapshot() == DistribInfo()


# ---------------------------------------------------------------------------
# The Transformation Server: run_all(distrib=) and the build gate
# ---------------------------------------------------------------------------
def make_catalog() -> XmlElement:
    root = XmlElement("catalog")
    book = root.add("book")
    book.add("title", text="A")
    book.add("price", text="10")
    return root


def picklable_pipe(name: str) -> InformationPipe:
    return Pipeline.builder(name).source("source", make_catalog).build().pipe


def test_run_all_distrib_matches_the_in_process_run():
    plain_server = TransformationServer()
    plain_server.register(picklable_pipe("books"))
    plain = plain_server.run_all()

    distrib_server = TransformationServer()
    distrib_server.register(picklable_pipe("books"))
    distributed = distrib_server.run_all(distrib=FAST)

    assert set(distributed) == set(plain) == {"books"}
    assert to_compact_xml(distributed["books"]["source"]) == to_compact_xml(
        plain["books"]["source"]
    )
    # Scheduler bookkeeping matches the in-process run...
    assert distrib_server.run_log == plain_server.run_log
    # ...the pipe keeps its last_results for change detection...
    pipe = distrib_server.pipe("books")
    assert pipe.last_results is not None
    # ...and the distrib counters saw the batch.
    assert distrib_server.distrib_info().tasks_acked == 1


def test_run_all_distrib_rejects_an_unpicklable_pipe():
    pipe = (
        Pipeline.builder("closure")
        .source("source", lambda: make_catalog())
        .build()
        .pipe
    )
    server = TransformationServer()
    server.register(pipe)
    with pytest.raises(PipelineError, match="does not pickle"):
        server.run_all(distrib=FAST)


def test_pipeline_build_distributable_gate():
    built = (
        Pipeline.builder("clean")
        .source("source", make_catalog)
        .build(distributable=True)
    )
    assert pickle.dumps(built.pipe) is not None

    with pytest.raises(PipelineError, match="not distributable"):
        (
            Pipeline.builder("dirty")
            .source("source", lambda: make_catalog())
            .build(distributable=True)
        )

"""Worker-crash chaos: SIGKILL a worker mid-batch, lose at most one run.

The crash model (docs/DISTRIB.md): a :class:`CrashPlan` arms chosen task
indexes, and the armed worker SIGKILLs itself *after* logging the
execution — exactly a worker dying mid-document.  The acceptance contract:

* the batch still completes, byte-equal to a crash-free sequential run;
* the task log (one ``index pid attempt`` line per actual evaluation)
  shows **at most one** re-executed document per crash with one worker,
  and at most ``workers`` with more (the pool fails every in-flight
  future when a member dies; only the executing ones were mid-run);
* a journal-backed batch resumes after the crash re-running *nothing*
  already acknowledged;
* a task that crashes on every attempt burns its requeue budget and
  fails its slot with :class:`WorkerCrashError` — the batch survives.

Chaos here is deterministic (the plan names its victims), but the suite
keeps the ``CHAOS_SEED`` convention of tests/resilience/ so CI can vary
the document mix and replay failures exactly.
"""

from __future__ import annotations

import os
import random
from collections import Counter

import pytest

from repro import DistribOptions, Session
from repro.api import CrashPlan, ErrorResult
from repro.datalog import parse_program
from repro.resilience import WorkerCrashError
from repro.web import SimulatedWeb
from repro.xmlgen.serializer import to_compact_xml

SEED = int(os.environ.get("CHAOS_SEED", "20260808"))

REACH = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

WRAPPER = "item(S, X) <- document(_, S), subelem(S, ?.p, X)"


def chain_databases(count: int):
    rng = random.Random(SEED)
    return [
        {"edge": {(i, i + 1) for i in range(rng.randint(2, 6))}}
        for _ in range(count)
    ]


def executed_indexes(task_log: str):
    """index -> number of actual evaluations, parsed from the audit log."""
    counts: Counter = Counter()
    if os.path.exists(task_log):
        with open(task_log, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    counts[int(line.split()[0])] += 1
    return counts


def rerun_indexes(task_log: str):
    return sorted(
        index for index, runs in executed_indexes(task_log).items() if runs > 1
    )


def test_single_worker_crash_reruns_exactly_the_inflight_document(tmp_path):
    program = parse_program(REACH)
    databases = chain_databases(8)
    sequential = Session().query_many(program, databases)

    log_path = str(tmp_path / "task.log")
    options = DistribOptions(
        workers=1,
        start_method="fork",
        crash_plan=CrashPlan(crash_indexes={3}),
        task_log=log_path,
    )
    session = Session()
    survived = session.query_many(program, databases, workers=options)

    # Byte-equal recovery: the crash is invisible in the results.
    assert len(survived) == len(sequential)
    for got, want in zip(survived, sequential):
        assert got.tuples("reach") == want.tuples("reach")

    # The audit log proves at most the armed document re-ran.
    assert rerun_indexes(log_path) == [3]
    assert executed_indexes(log_path)[3] == 2

    info = session.distrib_info()
    assert info.worker_crashes == 1
    assert info.tasks_acked == len(databases)


def test_multi_worker_crash_reruns_at_most_workers_documents(tmp_path):
    program = parse_program(REACH)
    databases = chain_databases(10)
    sequential = Session().query_many(program, databases)

    log_path = str(tmp_path / "task.log")
    options = DistribOptions(
        workers=2,
        start_method="fork",
        crash_plan=CrashPlan(crash_indexes={5}),
        task_log=log_path,
    )
    survived = Session().query_many(program, databases, workers=options)
    for got, want in zip(survived, sequential):
        assert got.tuples("reach") == want.tuples("reach")

    # A dying pool member fails every in-flight future, but only the
    # documents actually executing were mid-run: at most one per worker.
    reruns = rerun_indexes(log_path)
    assert 5 in reruns
    assert len(reruns) <= options.workers


def test_crashed_extraction_batch_recovers_byte_equal(tmp_path):
    web = SimulatedWeb()
    urls = []
    for i in range(6):
        url = f"chaos.test/{i}"
        web.publish(url, f"<html><body><p>rec-{i}</p></body></html>")
        urls.append(url)
    sequential = Session().extract_many(WRAPPER, urls=urls, fetcher=web)

    options = DistribOptions(
        workers=1,
        start_method="fork",
        crash_plan=CrashPlan(crash_indexes={2}),
        task_log=str(tmp_path / "task.log"),
    )
    survived = Session().extract_many(
        WRAPPER, urls=urls, fetcher=web, workers=options
    )
    for got, want in zip(survived, sequential):
        assert to_compact_xml(got.to_xml()) == to_compact_xml(want.to_xml())
    assert rerun_indexes(options.task_log) == [2]


def test_journal_resume_reruns_nothing_already_acknowledged(tmp_path):
    program = parse_program(REACH)
    databases = chain_databases(6)
    journal_path = str(tmp_path / "batch.jsonl")
    first_log = str(tmp_path / "first.log")

    first = Session().query_many(
        program,
        databases,
        workers=DistribOptions(
            workers=1,
            start_method="fork",
            journal_path=journal_path,
            crash_plan=CrashPlan(crash_indexes={1}),
            task_log=first_log,
        ),
    )
    assert rerun_indexes(first_log) == [1]

    # Resume the same batch against the same journal: every task is
    # acknowledged, so the second run evaluates *nothing*...
    second_log = str(tmp_path / "second.log")
    second = Session().query_many(
        program,
        databases,
        workers=DistribOptions(
            workers=1,
            start_method="fork",
            journal_path=journal_path,
            task_log=second_log,
        ),
    )
    assert executed_indexes(second_log) == Counter()
    # ...and still returns the full, identical result set from the journal.
    assert len(second) == len(first)
    for got, want in zip(second, first):
        assert got.tuples("reach") == want.tuples("reach")


def test_a_task_that_always_crashes_burns_its_budget_into_its_slot(tmp_path):
    program = parse_program(REACH)
    databases = chain_databases(4)
    options = DistribOptions(
        workers=1,
        start_method="fork",
        max_requeues=1,
        crash_plan=CrashPlan(crash_indexes={2}, only_first_attempt=False),
        task_log=str(tmp_path / "task.log"),
    )
    session = Session()
    results = session.query_many(
        program, databases, workers=options, on_error="collect"
    )

    # The poisoned slot carries the crash diagnosis; the rest survived.
    assert len(results) == 4
    slot = results[2]
    assert isinstance(slot, ErrorResult) and not slot.ok
    assert isinstance(slot.error, WorkerCrashError)
    assert slot.error.index == 2
    for index in (0, 1, 3):
        assert results[index].ok

    # attempt 0 plus max_requeues=1 retries, each crashing.
    assert executed_indexes(options.task_log)[2] == 2

    with pytest.raises(WorkerCrashError):
        Session().query_many(program, databases, workers=options)

"""The picklability audit: everything the distrib wire protocol carries.

The worker protocol (docs/DISTRIB.md) ships programs, options, policies,
payloads and results across process boundaries by pickle.  These tests pin
the contract: every envelope ingredient round-trips *unchanged*, compiled
artifacts are rejected outright, and the known-lossy cases
(:class:`PlanRegistry` travels empty, ``SelectionResult`` drops its
auxiliary resolver) lose exactly what they are documented to lose.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineOptions, ResiliencePolicy, Session
from repro.api import CrashPlan, DistribOptions, ErrorResult
from repro.datalog import parse_program
from repro.datalog.engine import SemiNaiveEngine
from repro.datalog.registry import PlanRegistry, program_fingerprint
from repro.distrib import TaskEnvelope, task_id_for
from repro.elog.concepts import ConceptRegistry
from repro.elog.parser import parse_elog
from repro.mdatalog import MonadicProgram
from repro.resilience import (
    FaultPlan,
    PermanentFetchError,
    RetryPolicy,
    TransientFetchError,
    WorkerCrashError,
)
from repro.resilience.policy import ResilienceStats
from repro.resilience.retry import CircuitBreaker
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.xmlgen.serializer import to_compact_xml

REACH = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = "item(S, X) <- document(_, S), subelem(S, ?.p, X)"


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


# ---------------------------------------------------------------------------
# Programs and configuration
# ---------------------------------------------------------------------------
def test_datalog_program_roundtrips_with_equal_fingerprint():
    program = parse_program(REACH)
    clone = roundtrip(program)
    assert program_fingerprint(clone) == program_fingerprint(program)
    assert [str(rule) for rule in clone.rules] == [
        str(rule) for rule in program.rules
    ]


def test_monadic_and_elog_programs_roundtrip():
    monadic = roundtrip(ITALIC)
    assert monadic.query_predicates == ITALIC.query_predicates
    elog = parse_elog(WRAPPER)
    clone = roundtrip(elog)
    assert [str(rule) for rule in clone.rules] == [str(rule) for rule in elog.rules]


def test_engine_options_and_resilience_policy_roundtrip_unchanged():
    options = EngineOptions(cache_size=3, on_diagnostics="ignore")
    assert roundtrip(options) == options
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=4, backoff_base_s=0.0, jitter=0.0, seed=7),
        on_error="collect",
    )
    assert roundtrip(policy) == policy


def test_distrib_options_and_crash_plan_roundtrip():
    options = DistribOptions(
        workers=3,
        start_method="fork",
        max_requeues=1,
        crash_plan=CrashPlan(crash_indexes={2, 5}),
    )
    clone = roundtrip(options)
    assert clone == options
    assert clone.crash_plan.should_crash(5, 0)
    assert not clone.crash_plan.should_crash(5, 1)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
def test_query_results_roundtrip_with_equal_views():
    session = Session()
    facts = session.query(parse_program(REACH), {"edge": {(1, 2), (2, 3)}})
    clone = roundtrip(facts)
    assert clone.tuples("reach") == facts.tuples("reach")
    assert clone.predicates() == facts.predicates()

    doc = tree(("doc", ("i", ("b",)), ("a",)))
    selection = session.query(ITALIC, doc)
    sel_clone = roundtrip(selection)
    assert sel_clone.tuples("italic") == selection.tuples("italic")
    assert [n.label for n in sel_clone.nodes("italic")] == [
        n.label for n in selection.nodes("italic")
    ]


def test_selection_result_drops_only_the_auxiliary_resolver():
    session = Session()
    doc = tree(("doc", ("i", ("b",)), ("a",)))
    selection = session.query(ITALIC, doc)
    clone = roundtrip(selection)
    # Declared query predicates answer identically...
    assert clone.tuples("italic") == selection.tuples("italic")
    # ...and the lazily-resolved auxiliary surface is documented to come
    # back empty (the resolver is a bound evaluator method).
    assert clone._resolver is None


def test_extraction_result_roundtrips_byte_equal():
    web = SimulatedWeb()
    web.publish("a.test/p", "<html><body><p>alpha</p><p>beta</p></body></html>")
    session = Session()
    result = session.extract(WRAPPER, url="a.test/p", fetcher=web)
    clone = roundtrip(result)
    assert to_compact_xml(clone.to_xml()) == to_compact_xml(result.to_xml())
    assert clone.texts("item") == result.texts("item")


def test_error_result_roundtrips_with_metadata():
    error = ErrorResult.from_exception(
        TransientFetchError("boom", url="x.test/p"), index=3, url="x.test/p"
    )
    clone = roundtrip(error)
    assert not clone.ok
    assert clone.index == 3 and clone.url == "x.test/p"
    assert type(clone.error) is type(error.error)
    assert clone.attempts == error.attempts


# ---------------------------------------------------------------------------
# The failure vocabulary (keyword-only kwargs need custom __reduce__)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "error",
    [
        TransientFetchError("transient", url="u.test/a"),
        PermanentFetchError("permanent", url="u.test/b"),
        WorkerCrashError("crashed", index=4, requeues=2),
    ],
)
def test_fetch_error_family_roundtrips(error):
    error.resilience_attempts = 3
    error.resilience_elapsed_s = 0.25
    clone = roundtrip(error)
    assert type(clone) is type(error)
    assert str(clone) == str(error)
    assert clone.url == error.url
    assert clone.resilience_attempts == 3
    assert clone.resilience_elapsed_s == 0.25


def test_worker_crash_error_carries_slot_metadata():
    clone = roundtrip(WorkerCrashError("dead", index=7, requeues=1))
    assert clone.index == 7 and clone.requeues == 1


# ---------------------------------------------------------------------------
# Lock-holding infrastructure: state crosses, locks are recreated
# ---------------------------------------------------------------------------
def test_resilience_stats_and_breaker_and_fault_plan_roundtrip():
    stats = ResilienceStats()
    stats.bump("attempts")
    stats.bump("errors_isolated", by=2)
    assert roundtrip(stats).snapshot() == stats.snapshot()

    breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
    clone = roundtrip(breaker)
    assert clone.state_of("host.test") == breaker.state_of("host.test")

    plan = FaultPlan(seed=5).fail_transient("u.test/a", times=1)
    assert roundtrip(plan) is not None


def test_simulated_web_fault_state_survives_pickling():
    web = SimulatedWeb()
    web.publish("flaky.test/p", "<html><body><p>x</p></body></html>")
    web.install_faults(FaultPlan().fail_transient("flaky.test/p", times=1))
    clone = roundtrip(web)
    # The replayed twin injects the same first-fetch fault...
    with pytest.raises(TransientFetchError):
        clone.fetch_html("flaky.test/p")
    # ...and recovers on retry exactly like the original.
    assert "<p>" in clone.fetch_html("flaky.test/p")


def test_plan_registry_pickles_to_an_empty_registry():
    registry = PlanRegistry()
    program = parse_program(REACH)
    registry.compiled(program, SemiNaiveEngine.BUILTINS)
    assert registry.misses == 1
    clone = roundtrip(registry)
    # Compiled plans close over engine builtins and must not travel: the
    # clone starts cold and recompiles on first use.
    assert clone.misses == 0 and clone.hits == 0
    compiled = clone.rehydrate(
        program, SemiNaiveEngine.BUILTINS, program_fingerprint(program)
    )
    assert compiled.fingerprint == program_fingerprint(program)


def test_rehydrate_rejects_a_mismatched_fingerprint():
    registry = PlanRegistry()
    program = parse_program(REACH)
    with pytest.raises(ValueError, match="fingerprint"):
        registry.rehydrate(program, SemiNaiveEngine.BUILTINS, 0xDEAD)


# ---------------------------------------------------------------------------
# The envelope: pickle-safe by construction
# ---------------------------------------------------------------------------
def test_task_envelope_roundtrips():
    program = parse_program(REACH)
    envelope = TaskEnvelope(
        task_id=task_id_for(0),
        index=0,
        kind="query",
        program=program,
        fingerprint=program_fingerprint(program),
        payload={"edge": frozenset({(1, 2)})},
        payload_kind="database",
    )
    clone = roundtrip(envelope)
    assert clone.task_id == envelope.task_id
    assert program_fingerprint(clone.program) == envelope.fingerprint


def test_task_envelope_rejects_compiled_artifacts():
    registry = PlanRegistry()
    program = parse_program(REACH)
    compiled = registry.compiled(program, SemiNaiveEngine.BUILTINS)
    with pytest.raises(TypeError, match="re-hydrate"):
        TaskEnvelope(task_id="t0", index=0, kind="query", program=compiled)
    plans = [plan for stratum in compiled.stratum_plans for plan in stratum]
    with pytest.raises(TypeError, match="engine-internal artifacts"):
        TaskEnvelope(task_id="t0", index=0, kind="query", payload=plans)


def test_task_envelope_rejects_columnar_storage_and_executors():
    # Columnar storage and the specialised executor chains are worker-local
    # scratch: a worker rebuilds storage from the plain database payload
    # and re-hydrates plans through its own registry, so every columnar
    # type (and a _JoinPlan closure chain) is refused at construction in
    # both the program and payload roles — bare or inside a container.
    from repro.datalog import ColumnarDatabase, ColumnarRelation

    database = ColumnarDatabase({"edge": {(1, 2), (2, 3)}})
    relation = database.lookup("edge")
    window = database.window("edge", 0, 2)
    registry = PlanRegistry()
    compiled = registry.compiled(parse_program(REACH), SemiNaiveEngine.BUILTINS)
    plan = compiled.stratum_plans[0][0]
    plan.seed(None, {position: 4 for position in plan.relational})
    join_plan = plan.seed_plans[None]
    for artifact in (database, relation, window, join_plan):
        with pytest.raises(TypeError, match="rebuilds storage"):
            TaskEnvelope(task_id="t0", index=0, kind="query", payload=artifact)
        with pytest.raises(TypeError, match="engine-internal artifacts"):
            TaskEnvelope(task_id="t0", index=0, kind="query", program=artifact)
        with pytest.raises(TypeError, match="engine-internal artifacts"):
            TaskEnvelope(task_id="t0", index=0, kind="query", payload=[artifact])


def test_task_envelope_validates_kinds():
    with pytest.raises(ValueError, match="kind"):
        TaskEnvelope(task_id="t0", index=0, kind="nope")
    with pytest.raises(ValueError, match="payload_kind"):
        TaskEnvelope(task_id="t0", index=0, kind="query", payload_kind="nope")


def test_requeued_bumps_attempt_and_disarms_the_chaos_flag():
    envelope = TaskEnvelope(
        task_id="t0", index=0, kind="query", crash=True, attempt=0
    )
    requeued = envelope.requeued()
    assert requeued.attempt == 1 and not requeued.crash


# ---------------------------------------------------------------------------
# Property tests: arbitrary programs and options round-trip
# ---------------------------------------------------------------------------
names = st.sampled_from(["p", "q", "r", "edge", "reach"])


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    rules = []
    for i in range(count):
        head = draw(names)
        body = draw(names)
        rules.append(f"{head}(X, Y) :- {body}(X, Y).")
    return parse_program("\n".join(rules))


@given(programs())
@settings(max_examples=25, deadline=None)
def test_any_program_roundtrips_fingerprint_stable(program):
    clone = pickle.loads(pickle.dumps(program))
    assert program_fingerprint(clone) == program_fingerprint(program)


@given(
    st.integers(min_value=1, max_value=64),
    st.sampled_from(["warn", "strict", "ignore"]),
    st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_any_engine_options_roundtrip(cache_size, policy, share):
    options = EngineOptions(
        cache_size=cache_size,
        on_diagnostics=policy,
        share_plans=share,
    )
    assert pickle.loads(pickle.dumps(options)) == options

"""The durable work queue: journal append, checkpoint, and replay.

The journal is the crash-recovery contract (docs/DISTRIB.md): every state
transition is one flushed JSONL record, the checkpoint is an atomic
summary, and :func:`WorkJournal.load` replays the file into exactly the
state a resuming executor needs — acked results returned verbatim,
leased-but-unacked tasks re-run, torn or unreadable records degraded to
"re-run one task", never to a crash.
"""

from __future__ import annotations

import json
import os

from repro.distrib import (
    JournalState,
    ResultEnvelope,
    WorkJournal,
    task_id_for,
)


def make_result(index: int, value: object = None) -> ResultEnvelope:
    return ResultEnvelope(
        task_id=task_id_for(index),
        index=index,
        ok=True,
        result=value if value is not None else {"index": index},
        error=None,
        pid=1234,
        compile_count=1,
        elapsed_s=0.001,
    )


# ---------------------------------------------------------------------------
# Appending and counting
# ---------------------------------------------------------------------------
def test_journal_appends_one_json_line_per_transition(tmp_path):
    path = str(tmp_path / "batch.jsonl")
    with WorkJournal(path) as journal:
        journal.task(task_id_for(0), 0)
        journal.lease(task_id_for(0), 0)
        journal.ack(make_result(0))
        journal.task(task_id_for(1), 1)
        journal.lease(task_id_for(1), 0)
        journal.requeue(task_id_for(1), 0, "worker crashed")

    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert [record["type"] for record in lines] == [
        "task", "lease", "ack", "task", "lease", "requeue",
    ]
    assert lines[5]["reason"] == "worker crashed"


def test_journal_counts_track_record_types(tmp_path):
    journal = WorkJournal(str(tmp_path / "b.jsonl"))
    journal.task(task_id_for(0), 0)
    journal.lease(task_id_for(0), 0)
    journal.lease(task_id_for(0), 1)
    journal.ack(make_result(0))
    assert journal.counts() == {"task": 1, "lease": 2, "ack": 1, "requeue": 0}
    journal.close()


def test_checkpoint_is_rewritten_after_every_ack(tmp_path):
    path = str(tmp_path / "b.jsonl")
    journal = WorkJournal(path)
    journal.task(task_id_for(0), 0)
    journal.task(task_id_for(1), 1)
    journal.ack(make_result(0))
    first = json.load(open(journal.checkpoint_path, encoding="utf-8"))
    assert first["ack"] == 1 and first["pending"] == 1
    journal.ack(make_result(1))
    second = json.load(open(journal.checkpoint_path, encoding="utf-8"))
    assert second["ack"] == 2 and second["pending"] == 0
    journal.close()
    # atomic write: no stray tmp file survives
    assert not os.path.exists(journal.checkpoint_path + ".tmp")


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def test_load_of_a_missing_journal_is_an_empty_state(tmp_path):
    state = WorkJournal.load(str(tmp_path / "never-written.jsonl"))
    assert state.acked == {} and state.lease_counts == {}


def test_replay_returns_acked_results_and_lease_counts(tmp_path):
    path = str(tmp_path / "b.jsonl")
    with WorkJournal(path) as journal:
        journal.task(task_id_for(0), 0)
        journal.lease(task_id_for(0), 0)
        journal.ack(make_result(0, value=["alpha"]))
        journal.task(task_id_for(1), 1)
        journal.lease(task_id_for(1), 0)
        journal.requeue(task_id_for(1), 0, "killed")
        journal.lease(task_id_for(1), 1)

    state = WorkJournal.load(path)
    assert state.is_acked(task_id_for(0))
    assert state.acked[task_id_for(0)].result == ["alpha"]
    # task 1 was leased twice, requeued once, never acked: it must re-run
    assert not state.is_acked(task_id_for(1))
    assert state.lease_counts[task_id_for(1)] == 2
    assert state.requeue_counts[task_id_for(1)] == 1


def test_replay_tolerates_a_torn_tail_record(tmp_path):
    path = str(tmp_path / "b.jsonl")
    with WorkJournal(path) as journal:
        journal.task(task_id_for(0), 0)
        journal.ack(make_result(0))
    # the parent died mid-append: the final line is half a record
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "ack", "id": "t0000')

    state = WorkJournal.load(path)
    assert state.is_acked(task_id_for(0))  # intact records still replay


def test_replay_treats_an_unreadable_ack_as_never_acked(tmp_path):
    path = str(tmp_path / "b.jsonl")
    with WorkJournal(path) as journal:
        journal.task(task_id_for(0), 0)
        journal.lease(task_id_for(0), 0)
    # an ack whose payload does not unpickle (corrupt base64)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"type": "ack", "id": task_id_for(0), "result": "!!!"})
            + "\n"
        )

    state = WorkJournal.load(path)
    # degraded to "re-run the task", not a crash
    assert not state.is_acked(task_id_for(0))
    assert state.lease_counts[task_id_for(0)] == 1


def test_replay_skips_records_without_a_task_id(tmp_path):
    path = str(tmp_path / "b.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"type": "lease", "attempt": 0}) + "\n")
        handle.write(json.dumps({"type": "noise"}) + "\n")
        handle.write("\n")
    assert WorkJournal.load(path) == JournalState()


def test_task_ids_are_stable_and_sortable():
    ids = [task_id_for(i) for i in (0, 1, 9, 10, 99, 1000)]
    assert ids == sorted(ids)
    assert task_id_for(3) == task_id_for(3)

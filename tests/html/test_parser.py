"""Unit tests for the HTML parser substrate."""

from __future__ import annotations

from repro.html import body_of, parse_html, parse_html_fragment, to_html
from repro.html.render import render_text, render_text_with_spans


def test_parse_simple_document(simple_html):
    assert simple_html.find_first("table") is not None
    rows = simple_html.find_all("tr")
    assert len(rows) == 3
    anchors = simple_html.find_all("a")
    assert [a.normalized_text() for a in anchors] == ["Book One", "Book Two", "Book Three"]


def test_attributes_are_lowercased_tags_preserved_values():
    doc = parse_html('<DIV CLASS="Big" data-x="1">t</DIV>')
    div = doc.find_first("div")
    assert div is not None
    assert div.get_attribute("class") == "Big"
    assert div.get_attribute("data-x") == "1"


def test_void_elements_do_not_swallow_content():
    doc = parse_html("<p>before<br>after<img src='x.png'>end</p>")
    p = doc.find_first("p")
    # The text nodes stay siblings of the void elements instead of being
    # swallowed as their children.
    assert [t.text for t in p.children if t.label == "#text"] == ["before", "after", "end"]
    assert doc.find_first("br").is_leaf
    assert doc.find_first("br").parent is p
    assert doc.find_first("img").get_attribute("src") == "x.png"


def test_unclosed_table_cells_are_closed_implicitly():
    doc = parse_html("<table><tr><td>one<td>two<tr><td>three</table>")
    rows = doc.find_all("tr")
    assert len(rows) == 2
    assert [len(row.children) for row in rows] == [2, 1]
    cells = doc.find_all("td")
    assert [cell.normalized_text() for cell in cells] == ["one", "two", "three"]


def test_unclosed_list_items():
    doc = parse_html("<ul><li>a<li>b<li>c</ul>")
    assert len(doc.find_all("li")) == 3
    # items must be siblings, not nested
    items = doc.find_all("li")
    assert all(item.parent.label == "ul" for item in items)


def test_nested_paragraph_closes_previous():
    doc = parse_html("<div><p>one<p>two</div>")
    paragraphs = doc.find_all("p")
    assert len(paragraphs) == 2
    assert all(p.parent.label == "div" for p in paragraphs)


def test_stray_end_tag_is_ignored():
    doc = parse_html("<div></span><b>x</b></div>")
    assert doc.find_first("b").normalized_text() == "x"


def test_comments_become_comment_nodes():
    doc = parse_html("<div><!-- hidden -->shown</div>")
    comments = doc.find_all("#comment")
    assert len(comments) == 1
    assert comments[0].text.strip() == "hidden"


def test_whitespace_only_text_skipped_by_default():
    doc = parse_html("<div>\n   <span>x</span>\n</div>")
    texts = doc.find_all("#text")
    assert [t.text for t in texts] == ["x"]
    kept = parse_html("<div>\n   <span>x</span>\n</div>", keep_whitespace_text=True)
    assert len(kept.find_all("#text")) == 3


def test_entities_are_decoded():
    doc = parse_html("<p>fish &amp; chips &euro;5</p>")
    assert doc.find_first("p").normalized_text() == "fish & chips €5"


def test_fragment_parsing():
    doc = parse_html_fragment("<td>cell</td>")
    assert doc.find_first("td").normalized_text() == "cell"


def test_body_of_returns_body_or_first_element(simple_html):
    assert body_of(simple_html).label == "body"
    fragment = parse_html_fragment("<div>x</div>")
    assert body_of(fragment).label == "div"


def test_url_is_recorded(simple_html):
    assert simple_html.url == "http://example.test/books"


def test_to_html_round_trip_preserves_structure(simple_html):
    markup = to_html(simple_html)
    reparsed = parse_html(markup)
    assert len(reparsed.find_all("tr")) == 3
    assert reparsed.find_first("a").get_attribute("href") == "/b/1"


def test_to_html_escapes_attribute_values():
    doc = parse_html('<a href="/x?a=1&amp;b=2" title=\'say "hi"\'>t</a>')
    markup = to_html(doc)
    assert "&amp;" in markup
    assert "&quot;" in markup


def test_render_text_blocks_and_inline(simple_html):
    text = render_text(simple_html)
    assert "Books" in text
    assert "Book One" in text
    # block elements produce line structure
    assert text.index("Books") < text.index("Book One")


def test_render_text_spans_cover_nodes(simple_html):
    text, spans = render_text_with_spans(simple_html)
    anchor = simple_html.find_first("a")
    start, end = spans[id(anchor)]
    assert text[start:end].strip() == "Book One"
    table = simple_html.find_first("table")
    t_start, t_end = spans[id(table)]
    assert t_start <= start and end <= t_end


def test_script_and_style_not_rendered():
    doc = parse_html("<body><script>var x=1;</script><p>visible</p></body>")
    text = render_text(doc)
    assert "visible" in text
    assert "var x" not in text

"""Smoke test: every examples/ script runs end to end through the façade.

The examples are the repo's real consumers (see .claude/skills/verify): each
one drives a full pipeline — HTML parsing, Elog/datalog extraction, XML
serialisation, server scheduling.  This test executes every ``main()`` so a
façade or engine change that breaks an example fails CI, not the reader.
"""

from __future__ import annotations

import importlib.util
import sys
import warnings
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_the_paper_example_set_is_complete():
    # Nine applications, one per paper section the ROADMAP tracks; a
    # disappearing example should be a conscious decision, not an accident.
    assert len(EXAMPLES) == 9


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(path, capsys):
    module_name = f"_example_smoke_{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        with warnings.catch_warnings():
            # The examples showcase the façade: any fallback onto a
            # deprecated pre-façade surface is a bug in the example.
            warnings.simplefilter("error", DeprecationWarning)
            spec.loader.exec_module(module)
            assert hasattr(module, "main"), f"{path.name} has no main()"
            module.main()
    finally:
        sys.modules.pop(module_name, None)
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} printed nothing"

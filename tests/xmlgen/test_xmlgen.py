"""Tests for the XML output substrate."""

from __future__ import annotations

from repro.tree import tree
from repro.xmlgen import (
    XmlElement,
    from_document,
    parse_xml,
    to_compact_xml,
    to_document,
    to_xml,
)


def build_catalog():
    root = XmlElement("catalog", attributes={"source": "test"})
    first = root.add("book", attributes={"id": "1"})
    first.add("title", text="Datalog Rising")
    first.add("price", text="12.50")
    second = root.add("book", attributes={"id": "2"})
    second.add("title", text="Trees of Vienna")
    return root


def test_add_find_and_iter():
    catalog = build_catalog()
    assert len(catalog.find_all("book")) == 2
    assert catalog.find("book").get("id") == "1"
    assert catalog.find("missing") is None
    assert catalog.findtext("missing", "none") == "none"
    assert len(list(catalog.iter("title"))) == 2
    assert catalog.size() == 6


def test_full_text_and_copy_independence():
    catalog = build_catalog()
    clone = catalog.copy()
    clone.find("book").add("note", text="signed")
    assert catalog.find("book").find("note") is None
    assert "Datalog Rising" in catalog.full_text()


def test_equality_is_structural():
    assert build_catalog() == build_catalog()
    other = build_catalog()
    other.find("book").attributes["id"] = "9"
    assert build_catalog() != other


def test_serialisation_and_parse_round_trip():
    catalog = build_catalog()
    markup = to_xml(catalog)
    assert markup.startswith("<?xml")
    assert markup.count("<book") == 2
    parsed = parse_xml(markup)
    assert parsed.find("book").findtext("title") == "Datalog Rising"
    compact = to_compact_xml(catalog)
    assert "\n" not in compact
    assert parse_xml(compact).find_all("book")[1].get("id") == "2"


def test_escaping_of_special_characters():
    element = XmlElement("note", text="fish & chips <tasty>")
    element.attributes["title"] = 'say "hi"'
    markup = to_xml(element)
    assert "&amp;" in markup and "&lt;tasty&gt;" in markup
    assert parse_xml(markup).text == "fish & chips <tasty>"


def test_document_conversion_round_trip():
    catalog = build_catalog()
    document = to_document(catalog)
    assert document.find_first("title") is not None
    back = from_document(document)
    assert back.find("book").findtext("title") == "Datalog Rising"
    generic = tree(("wrapper", ("item", "text:one"), ("item", "text:two")))
    element = from_document(generic)
    assert [child.text for child in element.find_all("item")] == ["one", "two"]

"""Tests for conjunctive queries over trees: evaluation, acyclicity,
classification, and the Corollary 4.5 translation (experiment E10)."""

from __future__ import annotations

import pytest

from repro.cq import (
    CQEvaluationError,
    CQToXPathError,
    boolean_answer,
    classify,
    classify_axes,
    evaluate_acyclic,
    evaluate_backtracking,
    evaluate_filtered,
    is_acyclic,
    query,
    to_positive_core_xpath,
    tractable_classes,
    unary_answers,
)
from repro.tree import random_tree, tree
from repro.xpath import evaluate_xpath


@pytest.fixture
def sample():
    return tree(
        (
            "r",
            ("a", ("b", ("c",)), ("b",)),
            ("a", ("c",)),
            ("b", ("a", ("c",))),
        )
    )


def test_query_construction_and_accessors():
    q = query(
        free=["X"],
        labels=[("X", "b"), ("Y", "a")],
        axes=[("child", "Y", "X")],
    )
    assert q.variables() == {"X", "Y"}
    assert q.axis_relations() == {"child"}
    assert q.size() == 3
    assert q.is_tree_shaped()
    assert "child(Y, X)" in str(q)


def test_unknown_axis_rejected():
    with pytest.raises(ValueError):
        query(axes=[("cousin", "X", "Y")])


def test_unary_query_child(sample):
    q = query(free=["X"], labels=[("X", "b"), ("Y", "a")], axes=[("child", "Y", "X")])
    answers = unary_answers(q, sample)
    assert all(node.label == "b" and node.parent.label == "a" for node in answers)
    assert len(answers) == 2


def test_unary_query_descendant(sample):
    q = query(free=["X"], labels=[("X", "c"), ("Y", "a")], axes=[("child+", "Y", "X")])
    answers = unary_answers(q, sample)
    assert len(answers) == 3  # every c has an a ancestor in the sample


def test_boolean_query(sample):
    yes = query(labels=[("X", "c"), ("Y", "b")], axes=[("child", "Y", "X")])
    no = query(labels=[("X", "r"), ("Y", "r")], axes=[("child", "Y", "X")])
    assert boolean_answer(yes, sample)
    assert not boolean_answer(no, sample)


def test_boolean_and_unary_guards():
    q_unary = query(free=["X"], labels=[("X", "a")])
    q_boolean = query(labels=[("X", "a")])
    doc = tree(("a",))
    with pytest.raises(CQEvaluationError):
        boolean_answer(q_unary, doc)
    with pytest.raises(CQEvaluationError):
        unary_answers(q_boolean, doc)


def test_backtracking_and_filtered_agree_on_random_inputs():
    for seed in range(4):
        document = random_tree(60, labels=("a", "b", "c"), seed=seed)
        q = query(
            free=["X"],
            labels=[("X", "b"), ("Y", "a"), ("Z", "c")],
            axes=[("child+", "Y", "X"), ("following", "X", "Z")],
        )
        assert evaluate_backtracking(q, document) == evaluate_filtered(q, document)


def test_cyclic_query_evaluation(sample):
    # x is a child of y AND an immediate next sibling of z, z child of y: cyclic
    q = query(
        free=["X"],
        labels=[("Y", "a")],
        axes=[("child", "Y", "X"), ("child", "Y", "Z"), ("nextsibling", "Z", "X")],
    )
    assert not is_acyclic(q)
    answers = unary_answers(q, sample)
    assert all(node.previous_sibling is not None for node in answers)
    with pytest.raises(CQEvaluationError):
        evaluate_acyclic(q, sample)


def test_acyclic_detection():
    acyclic = query(axes=[("child", "X", "Y"), ("child", "Y", "Z")])
    cyclic = query(axes=[("child", "X", "Y"), ("child+", "X", "Y")])
    assert is_acyclic(acyclic)
    assert not is_acyclic(cyclic)


def test_yannakakis_agrees_with_generic_on_tree_queries():
    q = query(
        free=["X"],
        labels=[("X", "b"), ("P", "a"), ("S", "c")],
        axes=[("child", "P", "X"), ("following", "X", "S")],
    )
    for seed in range(4):
        document = random_tree(70, labels=("a", "b", "c"), seed=seed)
        assert evaluate_acyclic(q, document) == evaluate_backtracking(q, document)


def test_yannakakis_boolean_and_multi_free():
    q_bool = query(labels=[("X", "a"), ("Y", "b")], axes=[("child", "X", "Y")])
    q_pair = query(
        free=["X", "Y"], labels=[("X", "a"), ("Y", "b")], axes=[("child", "X", "Y")]
    )
    document = tree(("r", ("a", ("b",)), ("a",)))
    assert evaluate_acyclic(q_bool, document) == {()}
    assert evaluate_acyclic(q_pair, document) == evaluate_backtracking(q_pair, document)
    assert len(evaluate_acyclic(q_pair, document)) == 1


def test_classification_of_axis_sets():
    assert classify_axes({"child+", "child*"}).tractable
    assert classify_axes({"child", "nextsibling", "nextsibling*"}).tractable
    assert classify_axes({"following"}).tractable
    assert not classify_axes({"child", "child+"}).tractable
    assert not classify_axes({"child*", "following"}).tractable
    assert classify_axes({"child", "child+"}).complexity == "NP-complete"
    assert len(tractable_classes()) == 3


def test_classify_query_reports_acyclicity():
    q = query(free=["X"], axes=[("child", "Y", "X")])
    verdict = classify(q)
    assert verdict.tractable
    assert verdict.acyclic
    with pytest.raises(ValueError):
        classify_axes({"bogus"})


def test_to_positive_core_xpath_matches_cq_semantics():
    q = query(
        free=["X"],
        labels=[("X", "b"), ("P", "a"), ("D", "c")],
        axes=[("child+", "P", "X"), ("child", "X", "D")],
    )
    xpath_query = to_positive_core_xpath(q)
    for seed in range(4):
        document = random_tree(60, labels=("a", "b", "c", "r"), seed=seed)
        expected = {node.preorder_index for node in unary_answers(q, document)}
        got = {node.preorder_index for node in evaluate_xpath(document, xpath_query)}
        assert got == expected


def test_to_positive_core_xpath_with_following_and_upward_edges():
    q = query(
        free=["X"],
        labels=[("X", "c"), ("A", "a"), ("F", "b")],
        axes=[("child+", "A", "X"), ("following", "X", "F")],
    )
    xpath_query = to_positive_core_xpath(q)
    document = random_tree(80, labels=("a", "b", "c"), seed=9)
    expected = {node.preorder_index for node in unary_answers(q, document)}
    got = {node.preorder_index for node in evaluate_xpath(document, xpath_query)}
    assert got == expected


def test_to_positive_core_xpath_rejections():
    cyclic = query(free=["X"], axes=[("child", "X", "Y"), ("child+", "X", "Y")])
    with pytest.raises(CQToXPathError):
        to_positive_core_xpath(cyclic)
    boolean = query(axes=[("child", "X", "Y")])
    with pytest.raises(CQToXPathError):
        to_positive_core_xpath(boolean)
    nextsib = query(free=["X"], axes=[("nextsibling", "X", "Y")])
    with pytest.raises(CQToXPathError):
        to_positive_core_xpath(nextsib)

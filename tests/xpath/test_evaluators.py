"""Tests for the Core XPath evaluators (linear, naive, full)."""

from __future__ import annotations

import pytest

from repro.html import parse_html
from repro.xpath import (
    CoreXPathEvaluator,
    UnsupportedFeatureError,
    evaluate_full,
    evaluate_naive,
    evaluate_xpath,
)


PAGE = """
<html>
  <body>
    <div id="main">
      <table class="items">
        <tr><th>name</th><th>price</th></tr>
        <tr><td><a href="/1">alpha</a></td><td>10</td></tr>
        <tr><td>beta</td><td>20</td></tr>
        <tr><td><a href="/3">gamma</a></td><td>30</td></tr>
      </table>
      <p>note</p>
    </div>
    <div id="footer"><p>contact</p></div>
  </body>
</html>
"""


@pytest.fixture
def page():
    return parse_html(PAGE)


def texts(nodes):
    return [node.normalized_text() for node in nodes]


def test_simple_descendant_query(page):
    rows = evaluate_xpath(page, "//tr")
    assert len(rows) == 4
    anchors = evaluate_xpath(page, "//td/a")
    assert texts(anchors) == ["alpha", "gamma"]


def test_child_chain_from_root(page):
    cells = evaluate_xpath(page, "/html/body/div/table/tr/td")
    assert len(cells) == 6


def test_predicate_existence(page):
    rows_with_links = evaluate_xpath(page, "//tr[td/a]")
    assert len(rows_with_links) == 2
    rows_with_th = evaluate_xpath(page, "//tr[th]")
    assert len(rows_with_th) == 1


def test_negated_predicate(page):
    rows_without_links = evaluate_xpath(page, "//tr[td and not(td/a)]")
    assert len(rows_without_links) == 1
    assert "beta" in rows_without_links[0].normalized_text()


def test_or_and_nested_predicates(page):
    selected = evaluate_xpath(page, "//div[table[tr[th]] or p[not(a)]]")
    ids = [node.get_attribute("id") for node in selected]
    assert ids == ["main", "footer"]


def test_following_sibling_axis(page):
    after_table = evaluate_xpath(page, "//table/following-sibling::p")
    assert texts(after_table) == ["note"]


def test_ancestor_and_parent_axes(page):
    anchors_div = evaluate_xpath(page, "//a/ancestor::div")
    assert [n.get_attribute("id") for n in anchors_div] == ["main"]
    td_parents = evaluate_xpath(page, "//a/..")
    assert all(node.label == "td" for node in td_parents)


def test_following_and_preceding_axes(page):
    following_p = evaluate_xpath(page, "//table/following::p")
    assert texts(following_p) == ["note", "contact"]
    preceding_tr = evaluate_xpath(page, "//p/preceding::tr")
    assert len(preceding_tr) == 4


def test_text_node_test_and_wildcard(page):
    all_text_in_anchors = evaluate_xpath(page, "//a/text()")
    assert texts(all_text_in_anchors) == ["alpha", "gamma"]
    elements_under_footer = evaluate_xpath(page, '//div[@id="footer"]/*')
    assert [n.label for n in elements_under_footer] == ["p"]


def test_attribute_predicates(page):
    with_href = evaluate_xpath(page, "//a[@href]")
    assert len(with_href) == 2
    exact = evaluate_xpath(page, '//a[@href="/3"]')
    assert texts(exact) == ["gamma"]


def test_text_equality_predicates(page):
    beta_cells = evaluate_xpath(page, "//td[text()='beta']")
    assert len(beta_cells) == 1
    rows = evaluate_xpath(page, "//tr[td='20']")
    assert len(rows) == 1
    assert "beta" in rows[0].normalized_text()


def test_relative_query_from_context_node(page):
    table = page.find_first("table")
    evaluator = CoreXPathEvaluator(page)
    cells = evaluator.evaluate("tr/td", context=table)
    assert len(cells) == 6
    # absolute queries ignore the context node
    assert evaluator.evaluate("//p", context=table) == evaluate_xpath(page, "//p")


def test_root_query_returns_document_root(page):
    result = evaluate_xpath(page, "/")
    assert len(result) == 1
    assert result[0] is page.root


def test_core_evaluator_rejects_positional(page):
    with pytest.raises(UnsupportedFeatureError):
        evaluate_xpath(page, "//tr[2]")
    with pytest.raises(UnsupportedFeatureError):
        evaluate_naive(page, "//tr[2]")


def test_full_evaluator_positional_predicates(page):
    second_row = evaluate_full(page, "//tr[2]")
    assert len(second_row) == 1
    assert "alpha" in second_row[0].normalized_text()
    last_cell_per_row = evaluate_full(page, "//tr/td[last()]")
    assert texts(last_cell_per_row) == ["10", "20", "30"]
    third = evaluate_full(page, "//table/tr[position()=4]/td[1]")
    assert texts(third) == ["gamma"]


def test_full_evaluator_agrees_with_core_on_core_queries(page):
    queries = [
        "//tr[td/a]",
        "//div[table[tr[th]] or p[not(a)]]",
        "//table/following-sibling::p",
        "//a/ancestor::div",
        "//td[text()='beta']",
    ]
    for query in queries:
        assert texts(evaluate_full(page, query)) == texts(evaluate_xpath(page, query))


def test_naive_evaluator_agrees_with_core(page):
    queries = [
        "//tr",
        "//tr[td and not(td/a)]",
        "//table/tr/td",
        "//p/preceding::tr",
        "//div[p]",
        '//a[@href="/1"]',
    ]
    for query in queries:
        assert texts(evaluate_naive(page, query)) == texts(evaluate_xpath(page, query))


def test_results_are_in_document_order(page):
    nodes = evaluate_xpath(page, "//td")
    indexes = [node.preorder_index for node in nodes]
    assert indexes == sorted(indexes)

"""Tests for the XPath parser."""

from __future__ import annotations

import pytest

from repro.xpath import (
    AttributeTest,
    Not,
    Or,
    PathExists,
    Position,
    TextEquals,
    XPathSyntaxError,
    is_core,
    is_positive,
    parse_xpath,
    query_size,
)


def test_parse_absolute_path_with_abbreviations():
    path = parse_xpath("/html/body//table")
    assert path.absolute
    axes = [step.axis for step in path.steps]
    assert axes == ["child", "child", "descendant-or-self", "child"]
    assert path.steps[-1].node_test.name == "table"


def test_parse_leading_double_slash():
    path = parse_xpath("//a")
    assert path.absolute
    assert [step.axis for step in path.steps] == ["descendant-or-self", "child"]


def test_parse_explicit_axes():
    path = parse_xpath("descendant::div/following-sibling::p/ancestor-or-self::*")
    assert [step.axis for step in path.steps] == [
        "descendant",
        "following-sibling",
        "ancestor-or-self",
    ]
    assert path.steps[2].node_test.kind == "any-element"


def test_parse_dot_and_dotdot():
    path = parse_xpath("./..")
    assert [step.axis for step in path.steps] == ["self", "parent"]


def test_parse_node_tests():
    path = parse_xpath("/*/text()/node()")
    kinds = [step.node_test.kind for step in path.steps]
    assert kinds == ["any-element", "text", "any"]


def test_parse_predicates_boolean_structure():
    path = parse_xpath("//tr[td and not(th or td/a)]")
    predicate = path.steps[-1].predicates[0]
    assert predicate.__class__.__name__ == "And"
    assert isinstance(predicate.left, PathExists)
    assert isinstance(predicate.right, Not)
    assert isinstance(predicate.right.operand, Or)


def test_parse_nested_predicates():
    path = parse_xpath("//table[tr[td[a]]]")
    outer = path.steps[-1].predicates[0]
    assert isinstance(outer, PathExists)
    inner = outer.path.steps[0].predicates[0]
    assert isinstance(inner, PathExists)


def test_parse_attribute_predicates():
    path = parse_xpath('//a[@href]/span[@class="big"]')
    assert path.steps[1].predicates[0] == AttributeTest("href")
    assert path.steps[2].predicates[0] == AttributeTest("class", "big")


def test_parse_positional_predicates():
    path = parse_xpath("//tr[2]/td[last()]/p[position()=3]")
    assert path.steps[1].predicates[0] == Position(2)
    assert path.steps[2].predicates[0] == Position(None)
    assert path.steps[3].predicates[0] == Position(3)


def test_parse_text_equality():
    path = parse_xpath("//td[text()='item']")
    assert path.steps[-1].predicates[0] == TextEquals("item")
    path2 = parse_xpath("//tr[td='42']")
    predicate = path2.steps[-1].predicates[0]
    assert isinstance(predicate, TextEquals)
    assert predicate.value == "42"
    assert predicate.path is not None


def test_parse_root_only():
    path = parse_xpath("/")
    assert path.absolute
    assert len(path.steps) == 0


def test_parse_relative_path():
    path = parse_xpath("tr/td")
    assert not path.absolute
    assert len(path.steps) == 2


def test_parse_errors():
    with pytest.raises(XPathSyntaxError):
        parse_xpath("//a[")
    with pytest.raises(XPathSyntaxError):
        parse_xpath("//a]extra")
    with pytest.raises(XPathSyntaxError):
        parse_xpath("//item(")
    with pytest.raises(XPathSyntaxError):
        parse_xpath("//a[$x]")


def test_query_size_counts_steps_and_operators():
    small = parse_xpath("//a")
    nested = parse_xpath("//a[b and not(c)]")
    assert query_size(nested) > query_size(small)


def test_is_positive_and_is_core():
    assert is_positive(parse_xpath("//a[b or c]"))
    assert not is_positive(parse_xpath("//a[not(b)]"))
    assert is_core(parse_xpath("//a[b][not(c)]"))
    assert not is_core(parse_xpath("//a[@href]"))
    assert not is_core(parse_xpath("//a[2]"))


def test_round_trip_str_is_reparsable():
    original = parse_xpath("//table[tr[td and not(th)]]/tr/td")
    reparsed = parse_xpath(str(original))
    assert str(reparsed) == str(original)

"""Experiment E11: Core XPath -> monadic datalog / TMNF translation."""

from __future__ import annotations

import pytest

from repro.mdatalog import MonadicTreeEvaluator, is_tmnf
from repro.tree import random_tree
from repro.xpath import (
    UnsupportedFeatureError,
    evaluate_xpath,
    translate_to_mdatalog,
    translate_to_tmnf,
)


QUERIES = [
    "//a",
    "/r/a/b",
    "//a[b]",
    "//a[b and c]",
    "//b[ancestor::a]",
    "//a/following-sibling::b",
    "//a[descendant::c]/b",
    "//a[b or c]/descendant::d",
    "//c[following::d]",
    "//a[b[c]]",
]

NEGATED_QUERIES = [
    "//a[not(b)]",
    "//a[b and not(c)]",
    "//b[not(descendant::c)]",
]


def datalog_answers(program, document):
    return {
        node.preorder_index
        for node in MonadicTreeEvaluator(program).select(document, "answer")
    }


def xpath_answers(document, query):
    return {node.preorder_index for node in evaluate_xpath(document, query)}


@pytest.mark.parametrize("query", QUERIES)
def test_translation_agrees_with_evaluator(query):
    labels = ("r", "a", "b", "c", "d")
    for seed in (0, 1, 2):
        document = random_tree(80, labels=labels, seed=seed)
        program = translate_to_mdatalog(query, labels=document.labels())
        assert datalog_answers(program, document) == xpath_answers(document, query)


@pytest.mark.parametrize("query", QUERIES)
def test_tmnf_translation_is_tmnf_and_equivalent(query):
    labels = ("r", "a", "b", "c", "d")
    document = random_tree(60, labels=labels, seed=5)
    program = translate_to_tmnf(query, labels=labels)
    assert is_tmnf(program)
    assert datalog_answers(program, document) == xpath_answers(document, query)


@pytest.mark.parametrize("query", NEGATED_QUERIES)
def test_negated_queries_translate_with_stratified_negation(query):
    labels = ("r", "a", "b", "c", "d")
    for seed in (0, 3):
        document = random_tree(70, labels=labels, seed=seed)
        program = translate_to_mdatalog(query, labels=labels)
        assert program.uses_negation()
        assert datalog_answers(program, document) == xpath_answers(document, query)


def test_tmnf_translation_rejects_negation():
    with pytest.raises(UnsupportedFeatureError):
        translate_to_tmnf("//a[not(b)]", labels=("a", "b"))


def test_translation_rejects_non_core_predicates():
    with pytest.raises(UnsupportedFeatureError):
        translate_to_mdatalog("//a[@href]", labels=("a",))
    with pytest.raises(UnsupportedFeatureError):
        translate_to_mdatalog("//a[2]", labels=("a",))


def test_translation_output_size_is_linear_in_query_size():
    labels = ("a", "b", "c")
    small = translate_to_mdatalog("//a[b]", labels=labels)
    big_query = "//a[b]" + "/a[b]" * 9
    big = translate_to_mdatalog(big_query, labels=labels)
    # 10x the steps should give roughly 10x the rules, not more
    assert len(big.rules) <= 12 * len(small.rules)


def test_wildcard_node_test_uses_label_alphabet():
    labels = ("r", "a", "b")
    document = random_tree(40, labels=labels, seed=2)
    program = translate_to_mdatalog("//a/*", labels=labels)
    assert datalog_answers(program, document) == xpath_answers(document, "//a/*")

"""One shared :class:`repro.api.Session` under concurrent server load.

The tentpole suite of PR 5: N request threads hammering a single session —
``query`` / ``query_many`` / ``extract`` / ``wrapper`` across all three
backends — must produce results byte-equal to the sequential run, build at
most one evaluator / interpreter per key (single-flight memos), and keep
every ``CacheInfo`` counter consistent (no lost or double-counted
increments).  The ``max_workers=`` batch paths must match their sequential
results exactly, including the fetch-overlapped ``urls=`` path.

CI runs this file under ``pytest-timeout``, so a lock bug that deadlocks
fails fast instead of stalling the job; locally every thread join carries
its own timeout.
"""

from __future__ import annotations

import threading
from typing import Callable, List

import pytest

from repro import EngineOptions, Session
from repro.automata import leaf_selector_automaton
from repro.datalog import parse_program
from repro.mdatalog import MonadicProgram
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

THREADS = 8

REACH = parse_program(
    """
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """
)

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""

BOOKS_URL = "books-a.test/bestsellers"


def run_threads(count: int, work: Callable[[int], None]) -> None:
    """Run ``work(i)`` on ``count`` gate-started threads; join with timeout."""
    errors: List[BaseException] = []
    barrier = threading.Barrier(count)

    def runner(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"
    if errors:
        raise errors[0]


@pytest.fixture
def documents():
    return [
        tree(("doc", ("i", ("b",)), ("a",))),
        tree(("doc", ("a",), ("i",))),
        tree(("doc", ("b", ("i", ("a",))))),
        tree(("doc", ("i",), ("i", ("b",)))),
    ]


@pytest.fixture
def web():
    site = SimulatedWeb()
    site.publish_many(bookstore_site(count=4, seed=7))
    return site


# ---------------------------------------------------------------------------
# Shared-session results equal the sequential run
# ---------------------------------------------------------------------------


def test_threads_hammering_query_match_sequential_on_all_backends(documents):
    databases = [{"edge": {(1, 2), (2, 3), (3, i + 4)}} for i in range(4)]
    automaton = leaf_selector_automaton(("doc", "i", "b", "a"))
    labels = ("doc", "i", "b", "a")

    def snapshot(session: Session) -> list:
        rows = []
        for database in databases:
            rows.append(sorted(session.query(REACH, database).tuples("reach")))
        for document in documents:
            rows.append(
                [n.preorder_index for n in session.query(ITALIC, document).nodes("italic")]
            )
        for document in documents:
            rows.append(
                [
                    n.preorder_index
                    for n in session.query(automaton, document, labels=labels).nodes(
                        "selected"
                    )
                ]
            )
        return rows

    expected = snapshot(Session())

    shared = Session()
    observed: List[list] = [None] * THREADS  # type: ignore[list-item]

    def work(index: int) -> None:
        for _ in range(5):
            observed[index] = snapshot(shared)

    run_threads(THREADS, work)
    assert all(rows == expected for rows in observed)
    # The whole storm compiled each program exactly once.
    assert shared.info()["evaluators"] == 3


def test_query_many_parallel_matches_sequential(documents):
    session = Session()
    sequential = session.query_many(ITALIC, documents)
    parallel = session.query_many(ITALIC, documents, max_workers=4)
    assert [
        [n.preorder_index for n in result.nodes("italic")] for result in parallel
    ] == [[n.preorder_index for n in result.nodes("italic")] for result in sequential]


def test_extract_many_parallel_matches_sequential_byte_for_byte(web, documents):
    urls = [BOOKS_URL, BOOKS_URL, "books-a.test/bestsellers/"]
    docs = [web.fetch(BOOKS_URL)]
    sequential = Session().extract_many(WRAPPER, docs, urls=urls, fetcher=web)
    parallel = Session().extract_many(
        WRAPPER, docs, urls=urls, fetcher=web, max_workers=4
    )
    assert [result.to_xml() for result in parallel] == [
        result.to_xml() for result in sequential
    ]


def test_extract_many_parallel_propagates_fetch_errors_like_sequential(web):
    # A missing start URL surfaces the fetch error itself (a FetchError,
    # which is still a KeyError) on both the sequential and parallel paths.
    from repro.resilience import FetchError

    urls = [BOOKS_URL, "http://no-such-site.test/404"]
    sequential = Session()
    with pytest.raises(FetchError):
        sequential.extract_many(WRAPPER, urls=urls, fetcher=web)
    parallel = Session()
    with pytest.raises(FetchError):
        parallel.extract_many(WRAPPER, urls=urls, fetcher=web, max_workers=4)


def test_threads_extracting_through_one_session_share_one_interpreter(web):
    session = Session()
    extractors = [None] * THREADS
    counts = [None] * THREADS

    def work(index: int) -> None:
        result = session.extract(WRAPPER, url=BOOKS_URL, fetcher=web)
        counts[index] = result.count("book")
        extractors[index] = session.wrapper(WRAPPER, web)

    run_threads(THREADS, work)
    assert counts == [4] * THREADS
    assert len({id(extractor) for extractor in extractors}) == 1
    assert session.info()["extractors"] == 1


# ---------------------------------------------------------------------------
# Single-flight: a thundering herd builds one instance
# ---------------------------------------------------------------------------


def test_concurrent_engine_calls_build_one_evaluator_and_compile_once():
    session = Session()
    evaluators = [None] * THREADS

    def work(index: int) -> None:
        evaluators[index] = session.engine(REACH)

    run_threads(THREADS, work)
    assert len({id(evaluator) for evaluator in evaluators}) == 1
    assert session.info()["evaluators"] == 1
    # The registry saw exactly one compilation for the one program.
    registry_info = session.plan_registry_info()
    assert registry_info.misses == 1
    assert registry_info.size == 1


def test_concurrent_text_queries_parse_once():
    session = Session()
    results = [None] * THREADS

    def work(index: int) -> None:
        results[index] = sorted(
            session.query(
                "p(X) :- e(X).", {"e": {(1,), (2,)}}, backend="semi-naive"
            ).tuples("p")
        )

    run_threads(THREADS, work)
    assert results == [[(1,), (2,)]] * THREADS
    assert len(session._parsed_programs) == 1
    assert session.info()["evaluators"] == 1


# ---------------------------------------------------------------------------
# CacheInfo consistency under the storm
# ---------------------------------------------------------------------------


def test_fixpoint_cache_counters_count_every_query(documents):
    session = Session(EngineOptions(cache_size=8))
    rounds = 6
    run_threads(
        THREADS,
        lambda index: [session.query(ITALIC, doc) for _ in range(rounds) for doc in documents],
    )
    evaluator = session.engine(ITALIC)
    info = evaluator.fixpoint_cache_info()
    # Every evaluate() did exactly one lookup; nothing lost, nothing double.
    assert info.hits + info.misses == THREADS * rounds * len(documents)
    # At least the first touch of each document missed; with racing first
    # touches there may be a few more misses, but never more than one per
    # thread per document and never a miss once entries are resident.
    assert len(documents) <= info.misses <= THREADS * len(documents)
    assert info.size <= info.capacity


def test_plan_registry_counters_are_exact_under_concurrent_sessions():
    from repro.datalog.registry import PlanRegistry

    registry = PlanRegistry(capacity=8)
    sessions = [Session(registry=registry) for _ in range(THREADS)]

    def work(index: int) -> None:
        sessions[index].engine(REACH)

    run_threads(THREADS, work)
    info = registry.info()
    # One miss per session's private build + its own memo, at most; every
    # compiled() call is counted exactly once.
    assert info.hits + info.misses == THREADS
    assert info.size == 1


def test_mixed_workload_storm_stays_consistent(web, documents):
    """Threads mixing query, query_many, extract and wrapper on one session."""
    session = Session()
    databases = [{"edge": {(1, 2), (2, 3)}}, {"edge": {(5, 6), (6, 7), (7, 8)}}]
    expected_reach = [
        sorted(Session().query(REACH, database).tuples("reach"))
        for database in databases
    ]
    expected_counts = Session().extract(WRAPPER, url=BOOKS_URL, fetcher=web).count("book")

    def work(index: int) -> None:
        for round_ in range(4):
            database = databases[(index + round_) % 2]
            assert (
                sorted(session.query(REACH, database).tuples("reach"))
                == expected_reach[(index + round_) % 2]
            )
            batch = session.query_many(ITALIC, documents, max_workers=2)
            assert len(batch) == len(documents)
            result = session.extract(WRAPPER, url=BOOKS_URL, fetcher=web)
            assert result.count("book") == expected_counts

    run_threads(THREADS, work)
    info = session.info()
    assert info["evaluators"] == 2  # REACH + ITALIC
    assert info["extractors"] == 1


def test_extract_many_parallel_fetches_duplicate_urls_like_sequential(web):
    """A duplicated URL is fetched once per instance on both paths, so
    stateful fetchers (counters, rotating content) see identical calls."""
    urls = [BOOKS_URL, BOOKS_URL, BOOKS_URL]
    sequential_web = SimulatedWeb()
    sequential_web.publish_many(bookstore_site(count=4, seed=7))
    Session().extract_many(WRAPPER, urls=urls, fetcher=sequential_web)
    parallel_web = SimulatedWeb()
    parallel_web.publish_many(bookstore_site(count=4, seed=7))
    Session().extract_many(WRAPPER, urls=urls, fetcher=parallel_web, max_workers=3)
    assert len(parallel_web.fetch_log) == len(sequential_web.fetch_log) == 3

"""Deprecation shims: the pre-façade surfaces still work, warn, and agree.

The acceptance contract of the façade PR: every pre-existing constructor
keeps working (so downstream code does not break), emits a
:class:`DeprecationWarning` naming the replacement, and produces results
identical to the options-based path.
"""

from __future__ import annotations

import warnings

import pytest

from repro import EngineOptions
from repro.automata import compiled_select, leaf_selector_automaton
from repro.datalog import SemiNaiveEngine, parse_program
from repro.mdatalog import MonadicProgram, MonadicTreeEvaluator
from repro.server import (
    DatalogQueryComponent,
    InformationPipe,
    WrapperComponent,
    XmlSourceComponent,
)
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.xmlgen import XmlElement
from repro.xmlgen.serializer import to_compact_xml

PROGRAM = parse_program(
    """
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """
)
DATABASE = {"edge": {(1, 2), (2, 3), (3, 1)}}

MONADIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)


@pytest.fixture
def doc():
    return tree(("doc", ("i", ("b",)), ("a",)))


def test_engine_legacy_kwargs_warn_and_match_options():
    with pytest.warns(DeprecationWarning, match="SemiNaiveEngine"):
        legacy = SemiNaiveEngine(PROGRAM, use_plans=False, cache_size=4)
    modern = SemiNaiveEngine(
        PROGRAM, options=EngineOptions(use_plans=False, cache_size=4)
    )
    assert legacy.evaluate(DATABASE) == modern.evaluate(DATABASE)
    assert legacy.use_plans is modern.use_plans is False
    assert legacy.fixpoint_cache_info().capacity == 4


def test_engine_rejects_mixing_options_and_legacy_kwargs():
    with pytest.raises(ValueError, match="not both"):
        SemiNaiveEngine(PROGRAM, use_plans=False, options=EngineOptions())


def test_engine_default_construction_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        SemiNaiveEngine(PROGRAM)
        SemiNaiveEngine(PROGRAM, options=EngineOptions(share_plans=False))


def test_monadic_evaluator_legacy_kwargs_warn_and_match_options(doc):
    with pytest.warns(DeprecationWarning, match="MonadicTreeEvaluator"):
        legacy = MonadicTreeEvaluator(MONADIC, force_generic=True)
    modern = MonadicTreeEvaluator(MONADIC, options=EngineOptions(force_generic=True))
    assert not legacy.uses_ground_pipeline and not modern.uses_ground_pipeline
    assert [n.preorder_index for n in legacy.select(doc, "italic")] == [
        n.preorder_index for n in modern.select(doc, "italic")
    ]


def test_compiled_select_legacy_kwargs_warn_and_match_options(doc):
    automaton = leaf_selector_automaton(("doc", "i", "b", "a"))
    with pytest.warns(DeprecationWarning, match="compiled_"):
        legacy = compiled_select(automaton, doc, force_generic=True)
    modern = compiled_select(
        automaton, doc, options=EngineOptions(force_generic=True)
    )
    assert [n.preorder_index for n in legacy] == [n.preorder_index for n in modern]


def test_datalog_component_legacy_kwargs_warn_and_match_options(doc):
    with pytest.warns(DeprecationWarning, match="DatalogQueryComponent"):
        legacy = DatalogQueryComponent("q", MONADIC, lambda: doc, cache_size=4)
    modern = DatalogQueryComponent(
        "q", MONADIC, lambda: doc, options=EngineOptions(cache_size=4)
    )
    assert to_compact_xml(legacy.process([])) == to_compact_xml(modern.process([]))


def test_wrapper_component_share_interpreter_warns():
    program = __import__("repro.elog", fromlist=["parse_elog"]).parse_elog(
        "offer(S, X) <- document(_, S), subelem(S, ?.tr, X)"
    )
    web = SimulatedWeb()
    web.publish("shop.test", "<html><body><table><tr><td>x</td></tr></table></body></html>")
    with pytest.warns(DeprecationWarning, match="share_interpreter"):
        legacy = WrapperComponent("w", program, web, "shop.test", share_interpreter=False)
    modern = WrapperComponent(
        "w", program, web, "shop.test", options=EngineOptions(share_plans=False)
    )
    assert to_compact_xml(legacy.process([])) == to_compact_xml(modern.process([]))


def test_imperative_pipe_wiring_warns_and_still_runs():
    def source():
        root = XmlElement("r")
        root.add("item")
        return root

    pipe = InformationPipe("legacy")
    with pytest.warns(DeprecationWarning, match="Pipeline.builder"):
        pipe.add(XmlSourceComponent("src", source))
    with pytest.warns(DeprecationWarning, match="Pipeline.builder"):
        pipe.add(XmlSourceComponent("other", source))
        pipe.connect("src", "other")
    with pytest.warns(DeprecationWarning, match="Pipeline.builder"):
        pipe.chain("src", "other")
    assert pipe.run()["src"].name == "r"

"""Session: ownership, backend routing, memoisation, batch entry points."""

from __future__ import annotations

import pytest

from repro import EngineOptions, Session, available_backends
from repro.api import ExtractionResult
from repro.api.backends import BackendError
from repro.automata import leaf_selector_automaton
from repro.datalog import parse_program, shared_registry
from repro.mdatalog import MonadicProgram
from repro.tree import tree
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

REACH = parse_program(
    """
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- reach(X, Z), edge(Z, Y).
    """
)

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


@pytest.fixture
def doc():
    return tree(("doc", ("i", ("b",)), ("a",)))


def test_all_three_backends_are_registered():
    assert set(available_backends()) >= {"semi-naive", "monadic", "automata"}


def test_backend_inference_by_program_type(doc):
    session = Session()
    facts = session.query(REACH, {"edge": {(1, 2), (2, 3)}})
    assert facts.backend == "semi-naive"
    assert facts.tuples("reach") == {(1, 2), (2, 3), (1, 3)}

    selection = session.query(ITALIC, doc)
    assert selection.backend == "monadic"
    assert [node.label for node in selection.nodes("italic")] == ["i", "b", "a"]

    automaton = leaf_selector_automaton(("doc", "i", "b", "a"))
    selected = session.query(automaton, doc)
    assert selected.backend == "automata"
    assert {node.label for node in selected.nodes("selected")} == {"b", "a"}


def test_semi_naive_backend_accepts_documents(doc):
    # A document source is encoded through tree_database and the result
    # resolves unary facts back to nodes.
    session = Session()
    result = session.query(ITALIC.to_datalog_program(), doc)
    assert result.backend == "semi-naive"
    assert [node.label for node in result.nodes("italic")] == ["i", "b", "a"]


def test_program_text_requires_an_explicit_backend(doc):
    session = Session()
    with pytest.raises(BackendError, match="backend="):
        session.query("p(X) :- e(X).", {"e": {(1,)}})
    result = session.query("p(X) :- e(X).", {"e": {(1,)}}, backend="semi-naive")
    assert result.tuples("p") == {(1,)}
    monadic = session.query("hit(X) :- label_i(X).", doc, backend="monadic")
    assert [node.label for node in monadic.nodes("hit")] == ["i"]


def test_unknown_backend_and_wrong_source_types_raise(doc):
    session = Session()
    with pytest.raises(BackendError, match="unknown backend"):
        session.query(REACH, {}, backend="nope")
    with pytest.raises(BackendError, match="documents"):
        session.query(ITALIC, {"edge": set()})
    with pytest.raises(BackendError, match="databases or documents"):
        session.query(REACH, 42)


def test_evaluators_are_memoised_per_program_content(doc):
    session = Session()
    first = session.engine(REACH)
    # A content-equal but distinct program object reuses the same engine.
    clone = parse_program(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """
    )
    assert session.engine(clone) is first
    assert session.info()["evaluators"] == 1


def test_session_registry_is_isolated_from_the_process_global():
    global_before = shared_registry().info()
    session = Session()
    session.engine(REACH, backend="semi-naive")
    global_after = shared_registry().info()
    assert (global_after.hits, global_after.misses) == (
        global_before.hits,
        global_before.misses,
    )
    assert session.plan_registry_info().misses >= 1


def test_two_sessions_can_share_one_registry():
    first = Session()
    second = Session(registry=first.registry)
    first.engine(REACH)
    second.engine(REACH)
    # The second session's construction is a pure registry hit.
    assert first.registry.info().hits >= 1


def test_query_many_normalises_text_programs_once(doc, monkeypatch):
    session = Session()
    calls = []
    original = MonadicProgram.parse

    def counting_parse(text, query_predicates=None):
        calls.append(text)
        return original(text, query_predicates=query_predicates)

    monkeypatch.setattr(MonadicProgram, "parse", staticmethod(counting_parse))
    session.query_many("hit(X) :- label_i(X).", [doc, doc, doc], backend="monadic")
    assert len(calls) == 1  # one parse for the whole stream, not per source


def test_query_many_reuses_one_engine_and_its_fixpoint_cache(doc):
    session = Session()
    other = tree(("doc", ("a",), ("i",)))
    results = session.query_many(ITALIC, [doc, other, doc, other, doc])
    assert len(results) == 5 and session.info()["evaluators"] == 1
    # Repeated documents hit the evaluator's per-document LRU.
    evaluator = session.engine(ITALIC)
    info = evaluator.fixpoint_cache_info()
    assert info.hits >= 3
    assert [n.label for n in results[0].nodes("italic")] == ["i", "b", "a"]
    assert [n.label for n in results[1].nodes("italic")] == ["i"]


def test_automata_engine_without_labels_refuses_instead_of_selecting_nothing():
    # An empty alphabet would compile a program that selects nothing on
    # every document — silently wrong, so the backend refuses up front.
    session = Session()
    automaton = leaf_selector_automaton(("doc", "i"))
    with pytest.raises(BackendError, match="label alphabet"):
        session.engine(automaton)
    evaluator = session.engine(automaton, labels=("doc", "i"))
    assert evaluator is session.engine(automaton, labels=("doc", "i"))


def test_query_many_automata_compiles_one_program_over_the_label_union():
    session = Session()
    automaton = leaf_selector_automaton(("doc", "i", "b", "a"))
    docs = [tree(("doc", ("i",))), tree(("doc", ("a", ("b",))))]
    results = session.query_many(automaton, docs)
    assert session.info()["evaluators"] == 1
    assert {n.label for n in results[0].nodes("selected")} == {"i"}
    assert {n.label for n in results[1].nodes("selected")} == {"b"}


def test_options_flow_into_session_built_engines():
    session = Session(EngineOptions(use_plans=False, cache_size=3))
    engine = session.engine(REACH)
    assert engine.use_plans is False
    assert engine.fixpoint_cache_info().capacity == 3


def test_extract_and_extract_many_share_one_interpreter():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=4, seed=7))
    session = Session()
    result = session.extract(WRAPPER, url="books-a.test/bestsellers", fetcher=web)
    assert isinstance(result, ExtractionResult)
    assert result.count("book") == 4
    assert len(result.texts("title")) == 4

    batch = session.extract_many(
        WRAPPER,
        urls=["books-a.test/bestsellers", "books-a.test/bestsellers"],
        fetcher=web,
    )
    assert [r.count("book") for r in batch] == [4, 4]
    # One parsed program, one interpreter for the whole stream.
    assert session.info()["extractors"] == 1
    assert session.wrapper(WRAPPER, web).program is session.wrapper(WRAPPER, web).program


def test_select_shorthand(doc):
    session = Session()
    assert [n.label for n in session.select(ITALIC, doc, "italic")] == ["i", "b", "a"]
    assert session.select(ITALIC, doc, "never_defined") == ()


def test_session_info_snapshot(doc):
    session = Session()
    session.query(ITALIC, doc)
    info = session.info()
    assert info["evaluators"] == 1
    assert "monadic" in info["backends"]
    assert isinstance(info["options"], EngineOptions)

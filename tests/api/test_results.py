"""Uniform result views over facts, node selections and instance bases."""

from __future__ import annotations

from repro import Session
from repro.api.results import ExtractionResult, FactsResult, SelectionResult
from repro.datalog import parse_program
from repro.html import parse_html
from repro.mdatalog import MonadicProgram
from repro.tree import tree

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

PAGE = """
<html><body><table>
  <tr><td class="model">Reflexa &lt;35&gt;</td><td class="price">$ 120.00</td></tr>
  <tr><td class="model">Panorama II</td><td class="price">EUR 89.50</td></tr>
</table></body></html>
"""

WRAPPER = """
offer(S, X)  <- document(_, S), subelem(S, ?.tr, X)
model(S, X)  <- offer(_, S), subelem(S, (?.td, [(class, model, exact)]), X)
price(S, X)  <- offer(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


def test_facts_result_views_without_a_document():
    result = Session().query(
        parse_program("p(X, Y) :- e(X, Y)."), {"e": {(1, 2), (3, 4)}}
    )
    assert isinstance(result, FactsResult)
    assert result.tuples("p") == {(1, 2), (3, 4)}
    assert result.count("p") == 2
    assert "p" in result and "q" not in result
    assert result.nodes("p") == ()  # no document to resolve nodes against
    assert result.texts("p") == ("1 2", "3 4")


def test_facts_result_resolves_nodes_through_the_document():
    document = tree(("doc", ("i", ("b",)), ("a",)))
    result = Session().query(ITALIC.to_datalog_program(), document)
    nodes = result.nodes("italic")
    assert [node.label for node in nodes] == ["i", "b", "a"]
    assert result.texts("italic") == tuple(n.normalized_text() for n in nodes)
    # Non-node facts (binary tree relations) degrade to empty node views.
    assert result.nodes("firstchild") == ()


def test_selection_result_views_and_lazy_aux_resolution():
    document = tree(("doc", ("i", ("b",)), ("a",)))
    program = MonadicProgram.parse(
        """
        aux(X) :- label_i(X).
        hit(X) :- aux(X0), firstchild(X0, X).
        """,
        query_predicates=["hit"],
    )
    result = Session().query(program, document)
    assert isinstance(result, SelectionResult)
    assert result.predicates() == {"hit"}
    assert result.tuples("hit") == {(2,)}
    # The auxiliary predicate is resolvable on demand through the evaluator,
    # and membership agrees with resolvability (not with predicates()).
    assert [node.label for node in result.nodes("aux")] == ["i"]
    assert "aux" in result and "hit" in result
    assert "never_defined" not in result
    assert result.nodes("never_defined") == ()


def test_views_are_memoised():
    result = Session().query(parse_program("p(X) :- e(X)."), {"e": {(1,)}})
    assert result.tuples("p") is result.tuples("p")
    assert result.texts("p") is result.texts("p")


def test_extraction_result_views():
    document = parse_html(PAGE, url="cameras.example/offers")
    result = Session().extract(WRAPPER, document=document)
    assert isinstance(result, ExtractionResult)
    assert {"offer", "model", "price"} <= result.patterns()
    assert result.count("offer") == 2
    assert result.count() == result.instance_base.count()
    # The textual view un-escapes scraped entities; document order holds.
    assert result.texts("model") == ("Reflexa <35>", "Panorama II")
    assert len(result.instances("offer")) == 2
    # The relational view carries (anchor, sub-anchor, text) triples.
    assert {entry[-1] for entry in result.tuples("price")} == {"$ 120.00", "EUR 89.50"}
    assert result.nodes("model")[0].label == "td"


def test_extraction_result_to_xml_uses_recorded_auxiliaries():
    document = parse_html(PAGE, url="cameras.example/offers")
    session = Session()
    program = session.wrapper(WRAPPER).program.mark_auxiliary("offer")
    result = session.extract(program, document=document)
    xml = result.to_xml(root_name="offers")
    # offers are auxiliary: models/prices are promoted to the root.
    assert xml.name == "offers"
    assert [child.name for child in xml.children[:2]] == ["model", "price"]

"""EngineOptions: the one tuning object every evaluator accepts."""

from __future__ import annotations

import pytest

from repro import EngineOptions
from repro.datalog.options import DEFAULT_OPTIONS, UNSET, resolve_options


def test_defaults_match_the_pre_facade_constructor_defaults():
    options = EngineOptions()
    assert options.use_index is True
    assert options.use_plans is True
    assert options.share_plans is True
    assert options.cache_size == 8
    assert options.force_generic is False


def test_options_are_frozen_and_hashable():
    options = EngineOptions()
    with pytest.raises(Exception):
        options.use_index = False  # type: ignore[misc]
    # Hashability is load-bearing: options key session evaluator memos and
    # the automata module evaluator cache.
    assert hash(options) == hash(EngineOptions())
    assert options == EngineOptions()
    assert options != EngineOptions(cache_size=4)


def test_derive_returns_an_updated_copy():
    base = EngineOptions()
    tuned = base.derive(cache_size=32, use_plans=False)
    assert tuned.cache_size == 32 and not tuned.use_plans
    assert base.cache_size == 8 and base.use_plans  # unchanged


def test_cache_size_is_validated_at_construction():
    with pytest.raises(ValueError):
        EngineOptions(cache_size=0)


def test_effective_flags_cascade_like_the_engine():
    # Plans need the index layer; sharing needs the plans.
    no_index = EngineOptions(use_index=False)
    assert not no_index.effective_use_plans
    assert not no_index.effective_share_plans
    no_plans = EngineOptions(use_plans=False)
    assert not no_plans.effective_share_plans
    assert EngineOptions().effective_share_plans


def test_resolve_options_passthrough_and_default():
    legacy_unset = {"use_index": UNSET, "cache_size": UNSET}
    assert resolve_options("X", None, legacy_unset) is DEFAULT_OPTIONS
    explicit = EngineOptions(cache_size=3)
    assert resolve_options("X", explicit, legacy_unset) is explicit


def test_resolve_options_warns_on_legacy_kwargs():
    with pytest.warns(DeprecationWarning, match="X\\(cache_size=\\.\\.\\.\\)"):
        resolved = resolve_options("X", None, {"cache_size": 3, "use_index": UNSET})
    assert resolved == EngineOptions(cache_size=3)


def test_resolve_options_rejects_mixing_options_and_legacy_kwargs():
    with pytest.raises(ValueError, match="not both"):
        resolve_options("X", EngineOptions(), {"cache_size": 3})

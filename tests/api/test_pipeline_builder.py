"""The declarative pipeline builder: construction, validation, execution."""

from __future__ import annotations

import warnings

import pytest

from repro import Pipeline, Session
from repro.api import (
    ChangeDetector,
    EmailDeliverer,
    PipelineError,
    TransformationServer,
    XmlDeliverer,
)
from repro.server import (
    FilterComponent,
    InformationPipe,
    IntegrationComponent,
    XmlSourceComponent,
)
from repro.xmlgen import XmlElement


def records(root_name, *values):
    root = XmlElement(root_name)
    for value in values:
        record = root.add("item")
        field = record.add("value")
        field.text = str(value)
    return root


def test_linear_pipeline_builds_and_runs():
    pipeline = (
        Pipeline.builder("numbers")
        .source("src", lambda: records("numbers", 1, 7, 3))
        .filter("big", "item", lambda item: int(item.findtext("value")) > 2)
        .sort("sorted", "item", "value")
        .deliver(XmlDeliverer("out"))
        .build()
    )
    results = pipeline.run()
    values = [item.findtext("value") for item in results["sorted"].find_all("item")]
    assert values == ["3", "7"]
    assert pipeline.component("out").last_delivery() is not None
    assert pipeline.name == "numbers"


def test_builder_matches_the_imperative_wiring():
    def build_imperative():
        pipe = InformationPipe("legacy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            pipe.add(XmlSourceComponent("a", lambda: records("a", 1, 2)))
            pipe.add(XmlSourceComponent("b", lambda: records("b", 3)))
            pipe.add(IntegrationComponent("merge", root_name="all"))
            pipe.add(FilterComponent("keep", "item", lambda item: True))
            pipe.connect("a", "merge")
            pipe.connect("b", "merge")
            pipe.connect("merge", "keep")
        return pipe.run()

    declarative = (
        Pipeline.builder("declared")
        .source("a", lambda: records("a", 1, 2))
        .source("b", lambda: records("b", 3))
        .integrate("merge", inputs=["a", "b"], root_name="all")
        .filter("keep", "item", lambda item: True)
        .build()
        .run()
    )
    imperative = build_imperative()
    from repro.xmlgen.serializer import to_compact_xml

    assert to_compact_xml(declarative["keep"]) == to_compact_xml(imperative["keep"])


def test_join_stage_pins_the_primary_side():
    pipeline = (
        Pipeline.builder("join")
        .source("left", lambda: records("left", "x", "y"))
        .source("right", lambda: records("right", "y"))
        .join(
            "joined", primary="left", other="right",
            record_name="item", other_record_name="item", key="value",
        )
        .build()
    )
    joined = pipeline.run()["joined"]
    # Both primary records pass through; only "y" gains a joined record.
    items = joined.find_all("item")
    assert len(items) == 2
    assert [len(item.find_all("item")) for item in items] == [0, 1]


def test_change_gated_delivery_via_on_change():
    state = {"values": (1,)}
    email = EmailDeliverer("alerts", "a@test")
    pipeline = (
        Pipeline.builder("watch")
        .source("src", lambda: records("snapshot", *state["values"]))
        .deliver(email, name="gate", on_change=ChangeDetector("item", key="value"))
        .build()
    )
    server = pipeline.serve(period=1)
    assert isinstance(server, TransformationServer)
    server.tick()                 # baseline: no delivery
    server.tick()                 # unchanged: no delivery
    assert len(email.deliveries) == 0
    state["values"] = (1, 2)
    server.tick()
    assert len(email.deliveries) == 1


def test_deliverers_sees_through_change_gates():
    email = EmailDeliverer("alerts", "a@test")
    pipeline = (
        Pipeline.builder("watch")
        .source("src", lambda: records("snapshot", 1))
        .deliver(email, name="gate", on_change=ChangeDetector("item", key="value"))
        .build()
    )
    assert pipeline.deliverers() == [email]


def test_serve_registers_on_an_existing_server():
    pipeline = (
        Pipeline.builder("p1").source("src", lambda: records("r", 1)).build()
    )
    server = TransformationServer()
    assert pipeline.serve(server) is server
    assert server.pipes() == ["p1"]


def test_validation_duplicate_stage_name():
    builder = Pipeline.builder().source("src", lambda: records("r"))
    with pytest.raises(PipelineError, match="duplicate"):
        builder.source("src", lambda: records("r"))


def test_validation_unknown_input_reference():
    builder = Pipeline.builder().source("src", lambda: records("r"))
    with pytest.raises(PipelineError, match="unknown component"):
        builder.filter("f", "item", lambda item: True, inputs=["nope"])


def test_validation_consumer_without_upstream():
    with pytest.raises(PipelineError, match="no upstream"):
        Pipeline.builder().filter("f", "item", lambda item: True)


def test_validation_empty_input_list():
    builder = Pipeline.builder().source("src", lambda: records("r"))
    with pytest.raises(PipelineError, match="empty input list"):
        builder.integrate("merge", inputs=[])


def test_validation_no_stages_and_no_sources():
    with pytest.raises(PipelineError, match="no stages"):
        Pipeline.builder().build()
    builder = Pipeline.builder()
    builder.stage(FilterComponent("f", "item", lambda item: True), inputs=(), is_source=True)
    built = builder.build()  # custom sources are allowed through stage()
    assert built.component("f").name == "f"


def test_validation_cycle_detected_at_build_time():
    builder = (
        Pipeline.builder()
        .source("src", lambda: records("r", 1))
        .filter("f", "item", lambda item: True)
        .filter("g", "item", lambda item: True)
        .connect("g", "f")
    )
    with pytest.raises(PipelineError, match="cycle"):
        builder.build()


def test_gate_only_kwargs_without_on_change_are_rejected():
    builder = Pipeline.builder().source("src", lambda: records("r", 1))
    with pytest.raises(PipelineError, match="on_change"):
        builder.deliver(XmlDeliverer("out"), message=lambda report: "hi")
    with pytest.raises(PipelineError, match="on_change"):
        builder.deliver(XmlDeliverer("out"), deliver_initial=True)


def test_ungated_deliver_cannot_be_renamed():
    builder = Pipeline.builder().source("src", lambda: records("r", 1))
    with pytest.raises(PipelineError, match="cannot rename"):
        builder.deliver(XmlDeliverer("out"), name="elsewhere")


def test_session_bound_builder_shares_session_state():
    session = Session()
    builder = session.pipeline("bound")
    assert isinstance(builder, type(Pipeline.builder()))
    pipeline = builder.source("src", lambda: records("r", 1)).build()
    assert pipeline.run()["src"].name == "r"

"""Public-API snapshot: the exported surface changes only deliberately.

The façade makes ``repro`` / ``repro.api`` the documented entry points; an
accidental re-export (or a dropped one) is an API break for downstream
users.  This test pins the exact ``__all__`` of the public modules — when
surface changes are intentional, update the snapshot here *and* docs/API.md
in the same commit.
"""

from __future__ import annotations

import importlib

import pytest

PUBLIC_SURFACE = {
    "repro": [
        "AnalysisError",
        "AnalysisReport",
        "Diagnostic",
        "DistribInfo",
        "DistribOptions",
        "EngineOptions",
        "ErrorResult",
        "ExtractionResult",
        "FetchError",
        "Pipeline",
        "PipelineBuilder",
        "QueryResult",
        "ResiliencePolicy",
        "RetryPolicy",
        "Session",
        "__version__",
        "analyze",
        "available_backends",
        "register_backend",
    ],
    "repro.api": [
        "AnalysisError",
        "AnalysisReport",
        "BackendError",
        "ChangeDetector",
        "ChangeGatedDeliverer",
        "ChangeReport",
        "Component",
        "CrashPlan",
        "DEFAULT_OPTIONS",
        "DEFAULT_RESILIENCE",
        "DelivererComponent",
        "Delivery",
        "Diagnostic",
        "DiagnosticWarning",
        "DistribInfo",
        "DistribOptions",
        "EmailDeliverer",
        "EngineOptions",
        "ErrorResult",
        "EvaluatorBackend",
        "ExtractionResult",
        "FaultPlan",
        "FaultyFetcher",
        "FetchError",
        "HtmlPortalDeliverer",
        "Pipeline",
        "PipelineBuilder",
        "PipelineError",
        "PlanRegistry",
        "QueryResult",
        "ResilienceInfo",
        "ResiliencePolicy",
        "RetryPolicy",
        "Session",
        "SmsDeliverer",
        "TransformationServer",
        "WorkJournal",
        "WorkerCrashError",
        "XmlDeliverer",
        "analyze",
        "available_backends",
        "backend_named",
        "infer_backend",
        "parse_elog",
        "register_backend",
        "resilience_report",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_public_all_matches_the_snapshot(module_name):
    module = importlib.import_module(module_name)
    assert sorted(module.__all__) == sorted(PUBLIC_SURFACE[module_name]), (
        f"{module_name}.__all__ changed; if intentional, update this "
        "snapshot and docs/API.md together"
    )


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_every_exported_name_is_importable(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} is exported but missing"


def test_default_backends_snapshot():
    from repro import available_backends

    assert list(available_backends()) == ["automata", "monadic", "semi-naive"]

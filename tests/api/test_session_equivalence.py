"""Property: Session-built evaluators == directly constructed engines.

The façade must be a pure routing layer: for every backend reachable from
:class:`Session`, the fixpoint computed through ``Session.query`` equals
the one computed by constructing the engine by hand — over randomised
programs with recursion, stratified negation and comparison builtins
(semi-naive), randomised documents (monadic, both the ground pipeline and
the forced-generic fallback), and automata compilations.  The session's
private plan registry, evaluator memoisation and uniform result wrappers
must all be invisible to the results.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro import EngineOptions, Session
from repro.automata import compiled_select, leaf_selector_automaton
from repro.datalog import SemiNaiveEngine
from repro.mdatalog import MonadicProgram, MonadicTreeEvaluator

from tests.properties.test_indexed_join_equivalence import databases, programs
from tests.properties.test_invariants import LABELS, documents

MDATALOG_TEXT = """
mark(X) :- label_a(X).
mark(X) :- mark(X0), firstchild(X0, X).
mark(X) :- mark(X0), nextsibling(X0, X).
deep(X) :- label_b(B), child(B, X), label_c(X).
"""


@settings(max_examples=40, deadline=None)
@given(program=programs(), database=databases())
def test_session_semi_naive_matches_direct_engine(program, database):
    session = Session()
    direct = SemiNaiveEngine(program, options=EngineOptions(share_plans=False))
    expected = direct.fixpoint(database)
    result = session.query(program, database)
    assert result.predicates() == frozenset(
        predicate for predicate in expected.predicates() if expected.query(predicate)
    )
    for predicate in expected.predicates():
        assert result.tuples(predicate) == expected.query(predicate)
    # Second pass through the memoised engine stays equal (no state leaks).
    again = session.query(program, database)
    for predicate in expected.predicates():
        assert again.tuples(predicate) == expected.query(predicate)


@settings(max_examples=25, deadline=None)
@given(document=documents())
def test_session_monadic_matches_direct_evaluator_on_both_pipelines(document):
    program = MonadicProgram.parse(MDATALOG_TEXT)
    for options in (EngineOptions(), EngineOptions(force_generic=True)):
        session = Session(options)
        direct = MonadicTreeEvaluator(program, options=options.derive(share_plans=False))
        result = session.query(program, document)
        expected = direct.evaluate(document)
        for predicate in program.query_predicates:
            assert [n.preorder_index for n in result.nodes(predicate)] == [
                n.preorder_index for n in expected[predicate]
            ]


@settings(max_examples=25, deadline=None)
@given(document=documents())
def test_session_automata_matches_compiled_select_and_the_automaton(document):
    automaton = leaf_selector_automaton(LABELS)
    session = Session()
    result = session.query(automaton, document, labels=LABELS)
    via_bridge = compiled_select(automaton, document, labels=LABELS)
    direct = automaton.select(document)
    assert [n.preorder_index for n in result.nodes("selected")] == [
        n.preorder_index for n in via_bridge
    ]
    assert {n.preorder_index for n in result.nodes("selected")} == {
        n.preorder_index for n in direct
    }


@settings(max_examples=20, deadline=None)
@given(document=documents())
def test_monadic_negation_reaches_the_generic_fallback_equivalently(document):
    # Negation forces the generic engine inside MonadicTreeEvaluator; the
    # session-routed result must match the direct, privately compiled one.
    program = MonadicProgram.parse(
        """
        marked(X) :- label_a(X).
        plain(X) :- label_b(X), not marked(X).
        """,
        query_predicates=["plain"],
    )
    session = Session()
    direct = MonadicTreeEvaluator(program, options=EngineOptions(share_plans=False))
    assert not direct.uses_ground_pipeline
    result = session.query(program, document)
    assert [n.preorder_index for n in result.nodes("plain")] == [
        n.preorder_index for n in direct.evaluate(document)["plain"]
    ]

"""The stack-wide unknown-predicate contract (satellite of the façade PR).

One behaviour, everywhere: *querying* a predicate the program never defines
returns an empty result — ``frozenset()`` from the datalog engine, ``[]``
from the monadic evaluator, empty views from the façade results, an empty
record set from the server component — never an error.  Strictness lives at
*declaration* time only: naming an undefined query predicate when
constructing a :class:`MonadicProgram` fails fast.  Auxiliary IDB
predicates are queryable on every surface (the fixpoint contains them).
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.datalog import SemiNaiveEngine, parse_program
from repro.mdatalog import MonadicityError, MonadicProgram, MonadicTreeEvaluator
from repro.server import DatalogQueryComponent
from repro.tree import tree

PROGRAM = parse_program(
    """
    aux(X) :- e(X).
    p(X) :- aux(X).
    """
)

MONADIC = MonadicProgram.parse(
    """
    aux(X) :- label_i(X).
    hit(X) :- aux(X0), firstchild(X0, X).
    """,
    query_predicates=["hit"],
)


@pytest.fixture
def doc():
    return tree(("doc", ("i", ("b",)), ("a",)))


def test_engine_query_unknown_predicate_is_empty():
    engine = SemiNaiveEngine(PROGRAM)
    result = engine.fixpoint({"e": {(1,)}})
    assert result.query("never_defined") == frozenset()
    assert "never_defined" not in result
    # Auxiliary IDB predicates are part of the fixpoint.
    assert result.query("aux") == {(1,)}


def test_monadic_select_unknown_predicate_is_empty_on_both_pipelines(doc):
    ground = MonadicTreeEvaluator(MONADIC)
    assert ground.uses_ground_pipeline
    assert ground.select(doc, "never_defined") == []
    generic = MonadicTreeEvaluator(
        MONADIC, options=__import__("repro").EngineOptions(force_generic=True)
    )
    assert generic.select(doc, "never_defined") == []


def test_monadic_select_resolves_auxiliary_predicates(doc):
    # Pre-façade, select() silently returned [] for aux predicates even
    # though the fixpoint derives them; now both pipelines resolve them,
    # matching EvaluationResult.query.
    ground = MonadicTreeEvaluator(MONADIC)
    generic = MonadicTreeEvaluator(
        MONADIC, options=__import__("repro").EngineOptions(force_generic=True)
    )
    assert [n.label for n in ground.select(doc, "aux")] == ["i"]
    assert [n.preorder_index for n in ground.select(doc, "aux")] == [
        n.preorder_index for n in generic.select(doc, "aux")
    ]


def test_monadic_select_of_binary_predicates_is_empty_on_both_pipelines(doc):
    # The fixpoint of the generic fallback also carries the binary tree
    # relations; select() must not leak their first components as nodes —
    # both pipelines answer [] for any non-unary predicate.
    ground = MonadicTreeEvaluator(MONADIC)
    generic = MonadicTreeEvaluator(
        MONADIC, options=__import__("repro").EngineOptions(force_generic=True)
    )
    for predicate in ("firstchild", "nextsibling", "child"):
        assert ground.select(doc, predicate) == []
        assert generic.select(doc, predicate) == []


def test_facade_views_are_empty_for_unknown_predicates(doc):
    session = Session()
    result = session.query(MONADIC, doc)
    assert result.tuples("never_defined") == frozenset()
    assert result.nodes("never_defined") == ()
    assert result.texts("never_defined") == ()
    assert result.count("never_defined") == 0
    facts = session.query(PROGRAM, {"e": {(1,)}})
    assert facts.tuples("never_defined") == frozenset()


def test_server_component_with_unmatched_query_predicate_emits_no_records(doc):
    # The component's output contract: one record per match of each query
    # predicate; a predicate that derives nothing simply contributes none.
    empty = MonadicProgram.parse(
        "hit(X) :- label_missing(X).", query_predicates=["hit"]
    )
    component = DatalogQueryComponent("q", empty, lambda: doc)
    assert component.process([]).children == []


def test_declaring_an_undefined_query_predicate_fails_fast():
    with pytest.raises(MonadicityError, match="not defined"):
        MonadicProgram.parse("hit(X) :- label_i(X).", query_predicates=["nope"])

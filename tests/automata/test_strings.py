"""Tests for the symbol-alphabet NFA/DFA machinery."""

from __future__ import annotations

from repro.automata import NFABuilder, determinize


def test_symbol_and_concat():
    builder = NFABuilder()
    nfa = builder.sequence(["table", "tr", "td"])
    assert nfa.accepts(["table", "tr", "td"])
    assert not nfa.accepts(["table", "td"])
    assert not nfa.accepts(["table", "tr", "td", "td"])


def test_union_and_star():
    builder = NFABuilder()
    td_or_th = builder.union(builder.symbol("td"), builder.symbol("th"))
    row = builder.concat(builder.symbol("tr"), builder.star(td_or_th))
    assert row.accepts(["tr"])
    assert row.accepts(["tr", "td", "th", "td"])
    assert not row.accepts(["tr", "div"])


def test_plus_and_optional():
    builder = NFABuilder()
    plus = builder.plus(builder.symbol("a"))
    assert not plus.accepts([])
    assert plus.accepts(["a"])
    assert plus.accepts(["a", "a", "a"])
    optional = builder.optional(builder.symbol("a"))
    assert optional.accepts([])
    assert optional.accepts(["a"])
    assert not optional.accepts(["a", "a"])


def test_any_symbol_wildcard():
    builder = NFABuilder()
    pattern = builder.concat(
        builder.symbol("body"), builder.concat(builder.star(builder.any_symbol()), builder.symbol("td"))
    )
    assert pattern.accepts(["body", "td"])
    assert pattern.accepts(["body", "table", "tr", "td"])
    assert not pattern.accepts(["body", "table"])


def test_matches_prefix():
    builder = NFABuilder()
    pattern = builder.star(builder.symbol("a"))
    assert pattern.matches_prefix(["a", "a", "b", "a"]) == [0, 1, 2]


def test_empty_language_fragment():
    builder = NFABuilder()
    empty = builder.empty()
    assert empty.accepts([])
    assert not empty.accepts(["a"])


def test_determinize_agrees_with_nfa():
    builder = NFABuilder()
    # (a|b)* a b  — the classic example needing subset construction
    nfa = builder.concat(
        builder.star(builder.union(builder.symbol("a"), builder.symbol("b"))),
        builder.concat(builder.symbol("a"), builder.symbol("b")),
    )
    dfa = determinize(nfa, alphabet=["a", "b"])
    words = [
        [], ["a"], ["b"], ["a", "b"], ["b", "a", "b"], ["a", "a", "b"],
        ["a", "b", "a"], ["b", "b", "a", "b"], ["a", "b", "b"],
    ]
    for word in words:
        assert dfa.accepts(word) == nfa.accepts(word), word
    assert dfa.state_count() >= 2


def test_determinize_with_wildcard_default_transitions():
    builder = NFABuilder()
    nfa = builder.concat(builder.any_symbol(), builder.symbol("end"))
    dfa = determinize(nfa, alphabet=["end"])
    assert dfa.accepts(["unknown-symbol", "end"])
    assert not dfa.accepts(["unknown-symbol", "unknown-symbol"])

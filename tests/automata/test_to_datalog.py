"""Experiment E5: tree automata compiled to monadic datalog agree with the
direct automaton run (Theorem 2.5, automata -> datalog direction)."""

from __future__ import annotations

from repro.automata import (
    compile_automaton,
    label_reachability_automaton,
    leaf_selector_automaton,
    state_predicate,
)
from repro.mdatalog import MonadicTreeEvaluator
from repro.tree import random_tree, tree


def selected_indexes(program, document):
    evaluator = MonadicTreeEvaluator(program)
    return {node.preorder_index for node in evaluator.select(document, "selected")}


def test_state_predicate_names():
    assert state_predicate("q1") == "state_q1"


def test_leaf_selector_compiles_to_equivalent_program():
    labels = ("a", "b", "c")
    automaton = leaf_selector_automaton(labels)
    program = compile_automaton(automaton, labels)
    for seed in range(5):
        document = random_tree(60, labels=labels, seed=seed)
        expected = {node.preorder_index for node in automaton.select(document)}
        assert selected_indexes(program, document) == expected


def test_compiled_program_respects_acceptance():
    """Selection must be empty when the automaton rejects the document."""
    labels = ("a", "b", "marker")
    reach = label_reachability_automaton("marker", labels=labels)
    # select every node of documents that contain a marker; reject otherwise
    reach.selecting = {"seen", "clean"}
    program = compile_automaton(reach, labels)
    accepted = tree(("a", ("b",), ("marker",)))
    rejected = tree(("a", ("b",), ("b",)))
    assert selected_indexes(program, accepted) == {
        node.preorder_index for node in reach.select(accepted)
    }
    assert len(selected_indexes(program, accepted)) == len(accepted)
    assert selected_indexes(program, rejected) == set()
    assert reach.select(rejected) == []


def test_compiled_program_uses_linear_pipeline():
    labels = ("a", "b")
    program = compile_automaton(leaf_selector_automaton(labels), labels)
    assert MonadicTreeEvaluator(program).uses_ground_pipeline


def test_compile_automaton_without_selecting_states_selects_nothing():
    labels = ("a", "b")
    automaton = label_reachability_automaton("a", labels=labels)
    program = compile_automaton(automaton, labels)
    document = random_tree(30, labels=labels, seed=1)
    assert selected_indexes(program, document) == set()


def test_compiled_evaluator_with_a_private_registry_is_cached_per_registry():
    from repro.automata.to_datalog import compiled_evaluator
    from repro.datalog import PlanRegistry

    labels = ("a", "b")
    automaton = leaf_selector_automaton(labels)
    registry = PlanRegistry()
    first = compiled_evaluator(automaton, labels, registry=registry)
    # Repeated calls with the same registry must reuse the evaluator (no
    # per-call recompilation); a different registry — or none — gets its own.
    assert compiled_evaluator(automaton, labels, registry=registry) is first
    assert compiled_evaluator(automaton, labels, registry=PlanRegistry()) is not first
    assert compiled_evaluator(automaton, labels) is not first

"""Tests for unranked (hedge) automata."""

from __future__ import annotations

from repro.automata import (
    HorizontalRule,
    NFABuilder,
    UnrankedTreeAutomaton,
    automaton_from_child_pattern,
)
from repro.tree import random_tree, tree


def test_child_pattern_selection():
    automaton = automaton_from_child_pattern(
        "tr", ["td", "td", "td"], labels=["table", "tr", "td", "th"]
    )
    document = tree(
        (
            "table",
            ("tr", ("td",), ("td",), ("td",)),
            ("tr", ("td",), ("td",)),
            ("tr", ("th",), ("td",), ("td",)),
            ("tr", ("td",), ("td",), ("td",)),
        )
    )
    selected = automaton.select(document)
    assert len(selected) == 2
    assert all(node.label == "tr" and len(node.children) == 3 for node in selected)
    assert all(all(c.label == "td" for c in node.children) for node in selected)


def test_child_pattern_acceptance_is_trivially_true():
    automaton = automaton_from_child_pattern("a", ["b"], labels=["a", "b", "c"])
    assert automaton.accepts(tree(("c", ("c",))))


def test_explicit_hedge_automaton_even_number_of_children():
    """Select nodes with an even, positive number of children — a genuinely
    MSO-but-not-FO-definable property of the child word."""
    builder = NFABuilder()
    any_state = builder.star(builder.any_symbol())
    pair = builder.concat(builder.any_symbol(), builder.any_symbol())
    even_positive = builder.plus(pair)
    rules = [
        HorizontalRule("*", "ok", any_state),
        HorizontalRule("*", "even", even_positive),
    ]
    automaton = UnrankedTreeAutomaton(
        rules=rules, accepting={"ok", "even"}, selecting={"even"}
    )
    for seed in range(5):
        document = random_tree(70, labels=("a", "b"), seed=seed)
        selected = {node.preorder_index for node in automaton.select(document)}
        expected = {
            node.preorder_index
            for node in document
            if node.children and len(node.children) % 2 == 0
        }
        assert selected == expected


def test_reachable_states_empty_when_no_rule_applies():
    builder = NFABuilder()
    rules = [HorizontalRule("known", "q", builder.star(builder.any_symbol()))]
    automaton = UnrankedTreeAutomaton(rules=rules, accepting={"q"})
    document = tree(("unknown",))
    reachable = automaton.reachable_states(document)
    assert reachable[document.root.preorder_index] == frozenset()
    assert not automaton.accepts(document)
    assert automaton.select(document) == []


def test_selection_requires_accepting_run():
    builder = NFABuilder()
    # "selected" state can only be assigned at leaves; the root only accepts
    # when it has exactly two children.
    rules = [
        HorizontalRule("*", "sel", builder.empty()),
        HorizontalRule("*", "plain", builder.star(builder.any_symbol())),
        HorizontalRule(
            "root_label", "acc", builder.concat(builder.any_symbol(), builder.any_symbol())
        ),
    ]
    automaton = UnrankedTreeAutomaton(rules=rules, accepting={"acc"}, selecting={"sel"})
    good = tree(("root_label", ("a",), ("b",)))
    bad = tree(("root_label", ("a",), ("b",), ("c",)))
    assert {n.label for n in automaton.select(good)} == {"a", "b"}
    assert automaton.select(bad) == []


def test_states_accessor():
    automaton = automaton_from_child_pattern("a", ["b"], labels=["a", "b"])
    assert "match" in automaton.states()
    assert "ok" in automaton.states()

"""Tests for ranked bottom-up tree automata on the binary encoding."""

from __future__ import annotations

from repro.automata import (
    BOTTOM,
    NondeterministicTreeAutomaton,
    label_reachability_automaton,
    leaf_selector_automaton,
)
from repro.tree import random_tree, tree


def test_label_reachability_accepts_iff_label_present():
    automaton = label_reachability_automaton("price", labels=["a", "b", "price"])
    with_price = tree(("a", ("b",), ("a", ("price",))))
    without_price = tree(("a", ("b",), ("a", ("b",))))
    assert automaton.accepts(with_price)
    assert not automaton.accepts(without_price)


def test_label_reachability_on_random_trees_matches_direct_check():
    automaton = label_reachability_automaton("c", labels=["a", "b", "c", "d"])
    for seed in range(6):
        document = random_tree(60, labels=("a", "b", "c", "d"), seed=seed)
        assert automaton.accepts(document) == bool(document.find_all("c"))


def test_leaf_selector_selects_exactly_unranked_leaves():
    labels = ("a", "b", "c")
    automaton = leaf_selector_automaton(labels)
    for seed in range(4):
        document = random_tree(80, labels=labels, seed=seed)
        selected = {node.preorder_index for node in automaton.select(document)}
        expected = {node.preorder_index for node in document if node.is_leaf}
        assert selected == expected


def test_run_returns_empty_on_undefined_transition():
    automaton = label_reachability_automaton("x", labels=["x"])
    document = tree(("unknown_label", ("x",)))
    # the label "unknown_label" has no transition and no wildcard
    assert automaton.run(document) == {}
    assert not automaton.accepts(document)
    assert automaton.select(document) == []


def test_wildcard_transitions_used_as_fallback():
    from repro.automata.ranked import TreeAutomaton

    transitions = {}
    for left in (BOTTOM, "q", "s"):
        for right in (BOTTOM, "q", "s"):
            transitions[("*", left, right)] = "q"
            transitions[("special", left, right)] = "s" if left == BOTTOM else "q"
    automaton = TreeAutomaton(transitions=transitions, accepting={"q", "s"}, selecting={"s"})
    document = tree(("a", ("special",), ("special", ("b",))))
    selected = automaton.select(document)
    assert [node.label for node in selected] == ["special"]
    assert len(selected) == 1  # only the childless special node


def test_nondeterministic_acceptance_and_determinization():
    # NTA guessing whether a subtree contains label "t": states {yes, no}
    transitions = {}
    for label in ("a", "t"):
        for left in (BOTTOM, "yes", "no"):
            for right in (BOTTOM, "yes", "no"):
                seen = label == "t" or left == "yes" or right == "yes"
                transitions[(label, left, right)] = frozenset({"yes"} if seen else {"no"})
    nta = NondeterministicTreeAutomaton(transitions=transitions, accepting={"yes"})
    with_t = tree(("a", ("a",), ("t",)))
    without_t = tree(("a", ("a",), ("a",)))
    assert nta.accepts(with_t)
    assert not nta.accepts(without_t)

    deterministic = nta.determinize()
    for seed in range(4):
        document = random_tree(40, labels=("a", "t"), seed=seed)
        assert deterministic.accepts(document) == nta.accepts(document)


def test_states_and_labels_accessors():
    automaton = label_reachability_automaton("x", labels=["x", "y"])
    assert "seen" in automaton.states()
    assert BOTTOM in automaton.states()
    assert automaton.labels() >= {"x", "y"}

"""Integration tests for the Section 6 application scenarios (E14-E17)."""

from __future__ import annotations


from repro.elog import parse_elog
from repro.elog.concepts import parse_number
from repro.server import (
    ChangeDetector,
    ChangeGatedDeliverer,
    FilterComponent,
    InformationPipe,
    IntegrationComponent,
    JoinComponent,
    RenameComponent,
    SmsDeliverer,
    SortComponent,
    TransformationServer,
    WrapperComponent,
    XmlDeliverer,
)
from repro.web import SimulatedWeb
from repro.web.sites.flights import advance_statuses, departures_page, generate_flights
from repro.web.sites.markets import competitor_sites
from repro.web.sites.music import now_playing_site, stations
from repro.web.sites.news import press_clipping_site


RADIO_WRAPPER = parse_elog(
    """
    playing(S, X) <- document(_, S), subelem(S, (?.div, [(class, nowplaying, exact)]), X)
    song(S, X)    <- playing(_, S), subelem(S, (?.span, [(class, song, exact)]), X)
    artist(S, X)  <- playing(_, S), subelem(S, (?.span, [(class, artist, exact)]), X)
    """
)
CHART_WRAPPER = parse_elog(
    """
    entry(S, X)    <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, pos, exact)]))
    position(S, X) <- entry(_, S), subelem(S, (?.td, [(class, pos, exact)]), X)
    song(S, X)     <- entry(_, S), subelem(S, (?.td, [(class, song, exact)]), X)
    """
)


def test_now_playing_pipeline_joins_radio_and_charts():
    """E14: the Now Playing application (Section 6.1)."""
    web = SimulatedWeb()
    web.publish_many(now_playing_site(station_count=3, chart_count=1, seed=8))
    pipe = InformationPipe("nowplaying")
    names = []
    for station in stations(3, seed=8):
        name = station.name.replace(" ", "_").lower()
        names.append(name)
        pipe.add(WrapperComponent(name, RADIO_WRAPPER, web, station.url, root_name="station"))
    pipe.add(WrapperComponent("chart", CHART_WRAPPER, web, "charts-1.test/top", root_name="chart"))
    pipe.add(IntegrationComponent("stations"))
    pipe.add(JoinComponent("joined", "playing", "entry", key="song"))
    for name in names:
        pipe.connect(name, "stations")
    pipe.connect("stations", "joined")
    pipe.connect("chart", "joined")
    results = pipe.run()
    playing = results["joined"].find_all("playing")
    assert len(playing) == 3
    assert all(p.findtext("song") for p in playing)
    # every currently-playing song that occurs in the chart got its entry
    for p in playing:
        entries = p.find_all("entry")
        for entry in entries:
            assert entry.findtext("song").lower() == p.findtext("song").lower()


def test_flight_monitor_sends_sms_only_on_change():
    """E15: flight schedule monitoring (Section 6.2)."""
    flights = generate_flights(5, seed=6)
    watched = flights[1].number
    url = "vienna-airport.test/departures"
    web = SimulatedWeb()
    web.publish(url, departures_page("Vienna", flights))
    wrapper = parse_elog(
        """
        flight(S, X) <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, flight, exact)]))
        number(S, X) <- flight(_, S), subelem(S, (?.td, [(class, flight, exact)]), X)
        status(S, X) <- flight(_, S), subelem(S, (?.td, [(class, status, exact)]), X)
        """
    )
    sms = SmsDeliverer("sms", "+43 1", summarise=lambda doc: doc.full_text())
    gate = ChangeGatedDeliverer("gate", sms, ChangeDetector("flight", key="number"))
    pipe = InformationPipe("flights")
    pipe.add(WrapperComponent("board", wrapper, web, url, root_name="departures"))
    pipe.add(FilterComponent("watch", "flight", lambda f: f.findtext("number") == watched))
    pipe.add(gate)
    pipe.chain("board", "watch", "gate")
    server = TransformationServer()
    server.register(pipe)
    server.tick(2)
    assert sms.deliveries == []
    web.publish(url, departures_page("Vienna", advance_statuses(flights, {watched: "cancelled"})))
    server.tick()
    assert len(sms.deliveries) == 1
    assert "cancelled" in sms.deliveries[0].body


def test_press_clipping_produces_nitf_output():
    """E16: press clipping with NITF renaming (Section 6.3)."""
    web = SimulatedWeb()
    web.publish_many(press_clipping_site(count=5, seed=4))
    news_wrapper = parse_elog(
        """
        article(S, X)  <- document(_, S), subelem(S, (?.div, [(class, article, exact)]), X)
        headline(S, X) <- article(_, S), subelem(S, (?.h2, [(class, headline, exact)]), X)
        date(S, X)     <- article(_, S), subelem(S, (?.span, [(class, date, exact)]), X)
        """
    )
    quotes_wrapper = parse_elog(
        """
        quote(S, X)   <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, company, exact)]))
        company(S, X) <- quote(_, S), subelem(S, (?.td, [(class, company, exact)]), X)
        price(S, X)   <- quote(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
        """
    )
    pipe = InformationPipe("clipping")
    pipe.add(WrapperComponent("press", news_wrapper, web, "financial-daily.test/news", root_name="news"))
    pipe.add(WrapperComponent("quotes", quotes_wrapper, web, "exchange.test/quotes", root_name="quotes"))
    pipe.add(IntegrationComponent("merge", root_name="clipping"))
    pipe.add(RenameComponent("nitf", {"article": "block", "headline": "hl1", "clipping": "nitf"}))
    pipe.add(XmlDeliverer("deliver"))
    pipe.connect("press", "merge")
    pipe.connect("quotes", "merge")
    pipe.chain("merge", "nitf", "deliver")
    results = pipe.run()
    nitf = results["nitf"]
    assert nitf.name == "nitf"
    assert len(list(nitf.iter("block"))) == 5
    assert len(list(nitf.iter("hl1"))) == 5
    assert len(list(nitf.iter("quote"))) == 5
    assert pipe.component("deliver").last_delivery() is not None


def test_price_monitoring_finds_cheapest_competitor():
    """E17: business-intelligence price monitoring (Section 6.6)."""
    web = SimulatedWeb()
    web.publish_many(competitor_sites(shops=3, count=6, seed=2))
    wrapper = parse_elog(
        """
        offer(S, X)   <- document(_, S), subelem(S, ?.tr, X)
        product(S, X) <- offer(_, S), subelem(S, (?.td, [(class, product, exact)]), X)
        price(S, X)   <- offer(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
        """
    )
    pipe = InformationPipe("prices")
    for index in range(3):
        pipe.add(
            WrapperComponent(
                f"shop{index + 1}", wrapper, web,
                f"competitor-{index + 1}.test/prices", root_name=f"shop{index + 1}",
            )
        )
        pipe.connect(f"shop{index + 1}", "merge") if False else None
    pipe.add(IntegrationComponent("merge", root_name="market"))
    for index in range(3):
        pipe.connect(f"shop{index + 1}", "merge")
    pipe.add(SortComponent("cheapest_first", "offer", "price", root_name="ranking"))
    pipe.connect("merge", "cheapest_first")
    results = pipe.run()
    offers = results["cheapest_first"].find_all("offer")
    assert len(offers) == 18
    prices = [parse_number(o.findtext("price")) for o in offers]
    assert prices == sorted(prices)

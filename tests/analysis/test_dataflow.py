"""Binding-pattern (adornment) dataflow: :mod:`repro.analysis.dataflow`."""

from __future__ import annotations

from repro.analysis.dataflow import (
    AdornedProgram,
    adorn,
    all_free,
    bound_positions,
)
from repro.datalog import parse_program

TC = parse_program(
    """
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- e(X, Z), tc(Z, Y).
    """
)


def test_adornment_helpers():
    assert all_free(3) == "fff"
    assert bound_positions("bfb") == (0, 2)
    assert bound_positions("ff") == ()


def test_transitive_closure_adornments_follow_the_join_order():
    adorned = adorn(TC, sizes={"e": 10.0, "tc": 1000.0})
    rendered = [str(rule) for rule in adorned.rules]
    # The greedy order starts with the smaller relation (e), whose
    # variables then bind the recursive tc occurrence on Z.  Output is in
    # (program rule order, head adornment order).
    assert rendered == [
        "tc^bf :- e^bf",
        "tc^ff :- e^ff",
        "tc^bf :- e^bf, tc^bf",
        "tc^ff :- e^ff, tc^bf",
    ]


def test_demand_reaches_a_fixpoint_on_recursion():
    adorned = adorn(TC, sizes={"e": 10.0, "tc": 1000.0})
    assert adorned.demanded == (("tc", "bf"), ("tc", "ff"))
    assert adorned.query_predicates == ("tc",)
    # Finite lattice: each (rule, adornment) pair appears exactly once.
    keys = [(r.rule, r.head_adornment) for r in adorned.rules]
    assert len(keys) == len(set(keys))


def test_query_predicates_restrict_the_demand():
    program = parse_program(
        """
        p(X) :- a(X).
        q(X) :- b(X).
        """
    )
    adorned = adorn(program, query_predicates=["p"])
    assert adorned.query_predicates == ("p",)
    assert {r.head_predicate for r in adorned.rules} == {"p"}


def test_constants_and_head_bindings_count_as_bound():
    program = parse_program('p(X) :- e(1, X), f(X, Y).')
    adorned = adorn(program)
    [rule] = adorned.rules
    steps = rule.join_steps()
    assert steps[0].predicate == "e"
    assert steps[0].adornment == "bf"  # the constant 1 is bound
    assert steps[1].predicate == "f"
    assert steps[1].adornment == "bf"  # X was bound by the e step


def test_builtins_and_negation_are_filters_not_join_steps():
    program = parse_program(
        """
        p(X) :- e(X, Y), not q(Y), lt(X, Y).
        q(X) :- f(X).
        """
    )
    adorned = adorn(program, query_predicates=["p"])
    [rule] = adorned.rules_for("p")
    kinds = [literal.kind for literal in rule.literals]
    assert kinds == ["relation", "negation", "builtin"]
    # Filters hold the post-join adornment: both X and Y are bound by e.
    negation, builtin = rule.literals[1], rule.literals[2]
    assert negation.adornment == "b"
    assert builtin.adornment == "bb"
    assert str(negation) == "not q^b"
    assert str(builtin) == "?lt^bb"
    # Negated IDB occurrences do not create demand.
    assert ("q", "b") not in adorned.demanded


def test_index_advice_reports_sorted_bound_position_keys():
    adorned = adorn(TC, sizes={"e": 10.0, "tc": 1000.0})
    assert adorned.index_advice() == {"e": ((0,),), "tc": ((0,),)}


def test_adornment_is_deterministic():
    first = adorn(TC, sizes={"e": 10.0, "tc": 1000.0})
    second = adorn(TC, sizes={"e": 10.0, "tc": 1000.0})
    assert isinstance(first, AdornedProgram)
    assert [str(r) for r in first.rules] == [str(r) for r in second.rules]
    assert first.demanded == second.demanded

"""Golden diagnostics: every shipped program analyzes without errors.

Two sweeps: (1) the scanner walks every ``examples/*.py`` file and
analyzes each embedded program constant; (2) the wrapper constants that
target the six synthetic sites in ``repro.web.sites`` are analyzed
explicitly, so a site wrapper cannot rot even if the scanner's
heuristics change.  Warnings are allowed (they are advice); errors are
not.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze, analyze_scanned, scan_file
from repro.elog.figure5 import FIGURE5_TEXT

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

EXAMPLE_FILES = sorted(EXAMPLES.glob("*.py"))


def _load_example(name):
    """Import an examples/ module by file name without executing main()."""
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"_golden_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_the_scanner_finds_programs_to_check():
    scanned = [p for path in EXAMPLE_FILES for p in scan_file(path)]
    assert len(scanned) >= 9, "example scan shrank; did constants get renamed?"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_file_programs_analyze_without_errors(path):
    for scanned, report in analyze_scanned(scan_file(path)):
        assert not report.has_errors, f"{scanned.label}:\n{report.render()}"


# The six synthetic sites and the wrapper constants written against them.
# ebay's wrapper is the Figure 5 program itself (examples/ebay_auctions.py
# imports it rather than embedding a copy).
SITE_WRAPPERS = {
    "bookstore": [("books_pipeline.py", name) for name in ("SHOP_A", "SHOP_B", "SHOP_C")],
    "ebay": [(None, "FIGURE5_TEXT")],
    "flights": [("flight_monitor.py", "BOARD_WRAPPER")],
    "markets": [("price_monitoring.py", "PRICE_WRAPPER")],
    "music": [("now_playing.py", name) for name in ("RADIO_WRAPPER", "CHART_WRAPPER")],
    "news": [
        ("press_clipping.py", name)
        for name in ("DAILY_WRAPPER", "WIRE_WRAPPER", "QUOTES_WRAPPER")
    ],
}


def test_the_mapping_covers_every_site():
    import repro.web.sites as sites

    site_dir = Path(sites.__file__).parent
    on_disk = {p.stem for p in site_dir.glob("*.py") if p.stem != "__init__"}
    assert on_disk == set(SITE_WRAPPERS)


@pytest.mark.parametrize(
    "site,source,constant",
    [
        (site, source, constant)
        for site, targets in sorted(SITE_WRAPPERS.items())
        for source, constant in targets
    ],
    ids=lambda value: str(value),
)
def test_site_wrapper_analyzes_without_errors(site, source, constant):
    if source is None:
        text = FIGURE5_TEXT
    else:
        text = getattr(_load_example(source), constant)
    report = analyze(text, kind="elog")
    assert not report.has_errors, f"{site}/{constant}:\n{report.render()}"

"""Cardinality/cost estimation and the P-series performance checks."""

from __future__ import annotations

from repro.analysis import analyze
from repro.analysis.cost import (
    BLOWUP_THRESHOLD,
    DEFAULT_DOMAIN_SIZE,
    check_performance,
    relation_estimates,
    rule_costs,
)
from repro.analysis.dataflow import adorn
from repro.analysis.datalog_checks import TREE_SIGNATURE
from repro.datalog import parse_program


def _rule_ids(diagnostics):
    return [d.rule_id for d in diagnostics]


# ---------------------------------------------------------------------------
# Estimates
# ---------------------------------------------------------------------------


def test_tree_estimates_encode_document_structure():
    program = parse_program(
        """
        below(X) :- root(X).
        below(X) :- below(X0), child(X0, X).
        hit(X) :- below(X), label_a(X).
        """
    )
    estimates = relation_estimates(program, edb=TREE_SIGNATURE)
    n = float(DEFAULT_DOMAIN_SIZE)
    assert estimates["root"] == 1.0
    assert estimates["label_a"] == n / 8.0
    assert estimates["child"] == n
    # IDB sizes are capped at domain^arity.
    assert 0.0 < estimates["below"] <= n
    assert 0.0 < estimates["hit"] <= n


def test_generic_estimates_scale_with_arity():
    program = parse_program("p(X, Y) :- e(X, Y), a(X).")
    estimates = relation_estimates(program)
    assert estimates["a"] == float(DEFAULT_DOMAIN_SIZE)
    assert estimates["e"] == 2.0 * DEFAULT_DOMAIN_SIZE


def test_rule_costs_follow_the_uniform_selectivity_model():
    program = parse_program("p(X, Y) :- e(X, Z), e(Z, Y).")
    estimates = {"e": 100.0}
    adorned = adorn(program, sizes=estimates)
    [cost] = rule_costs(adorned, estimates, domain_size=100)
    # Step 1: scan e (100 rows); step 2: probe e on the bound Z, fan-out
    # 100/100 = 1 -> still 100 rows.  Total intermediate rows: 200.
    assert [step.rows_out for step in cost.steps] == [100.0, 100.0]
    assert cost.cost == 200.0
    assert cost.magnitude == 3
    assert cost.rows == 100.0


# ---------------------------------------------------------------------------
# One trigger + one clean program per P rule id
# ---------------------------------------------------------------------------


def test_p001_triggers_on_an_estimated_blowup():
    diagnostics = check_performance(parse_program("p(X, Y) :- a(X), b(Y)."))
    assert "P001" in _rule_ids(diagnostics)
    [blowup] = [d for d in diagnostics if d.rule_id == "P001"]
    assert blowup.severity == "warning"
    assert "cartesian" in blowup.message


def test_p001_clean_when_the_estimate_stays_small():
    # The same shape over a tiny modelled domain stays under the budget —
    # P005 still flags the unbound join, but no blowup is predicted.
    diagnostics = check_performance(
        parse_program("p(X, Y) :- a(X), b(Y)."), domain_size=10
    )
    assert "P001" not in _rule_ids(diagnostics)
    assert "P005" in _rule_ids(diagnostics)


def test_p002_triggers_on_nonlinear_recursion():
    diagnostics = check_performance(
        parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            """
        )
    )
    nonlinear = [d for d in diagnostics if d.rule_id == "P002"]
    assert len(nonlinear) == 1
    assert nonlinear[0].subject == "tc"
    assert "Theorem 2.4" in nonlinear[0].message


def test_p002_clean_on_linear_recursion():
    diagnostics = check_performance(
        parse_program(
            """
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
    )
    assert "P002" not in _rule_ids(diagnostics)


def test_p002_mutual_recursion_counts_the_whole_component():
    diagnostics = check_performance(
        parse_program(
            """
            p(X) :- q(X).
            q(X) :- e(X, Y), p(Y), p(X).
            """
        )
    )
    assert "P002" in _rule_ids(diagnostics)


def test_p003_advises_the_probed_index_keys():
    diagnostics = check_performance(
        parse_program("p(X, Y) :- e(X, Z), f(Z, Y).")
    )
    advice = [d for d in diagnostics if d.rule_id == "P003"]
    assert advice and all(d.severity == "info" for d in advice)
    assert {d.subject for d in advice} == {"f"}
    assert "(0)" in advice[0].message


def test_p003_clean_when_no_join_probes_anything():
    diagnostics = check_performance(parse_program("p(X) :- a(X)."))
    assert "P003" not in _rule_ids(diagnostics)


def test_p004_triggers_on_undemanded_computation():
    diagnostics = check_performance(
        parse_program(
            """
            p(X) :- a(X).
            q(X) :- b(X).
            """
        ),
        query_predicates=["p"],
    )
    [undemanded] = [d for d in diagnostics if d.rule_id == "P004"]
    assert undemanded.subject == "q"
    assert "never demanded" in undemanded.message


def test_p004_clean_when_every_predicate_is_demanded():
    diagnostics = check_performance(
        parse_program(
            """
            p(X) :- q(X).
            q(X) :- b(X).
            """
        ),
        query_predicates=["p"],
    )
    assert "P004" not in _rule_ids(diagnostics)


def test_p005_triggers_on_a_completely_unbound_join_step():
    diagnostics = check_performance(
        parse_program("p(X, Y) :- a(X), b(Y)."), domain_size=10
    )
    [unbound] = [d for d in diagnostics if d.rule_id == "P005"]
    assert unbound.severity == "warning"
    assert unbound.subject == "p"


def test_p005_clean_when_the_join_shares_a_variable():
    diagnostics = check_performance(
        parse_program("p(X, Y) :- a(X), b(X, Y)."), domain_size=10
    )
    assert "P005" not in _rule_ids(diagnostics)


def test_p_series_is_never_error_severity():
    diagnostics = check_performance(
        parse_program(
            """
            p(X, Y) :- a(X), b(Y).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            q(X) :- b(X).
            """
        ),
        query_predicates=["p", "tc"],
    )
    assert diagnostics, "the kitchen-sink program should trigger P rules"
    assert all(d.severity in ("warning", "info") for d in diagnostics)
    # id-sorted output, stable for snapshots
    assert _rule_ids(diagnostics) == sorted(_rule_ids(diagnostics))


def test_blowup_threshold_is_the_documented_budget():
    assert BLOWUP_THRESHOLD == 1e6


# ---------------------------------------------------------------------------
# analyze() integration: P checks are opt-in
# ---------------------------------------------------------------------------

NONLINEAR = """
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
"""


def test_analyze_excludes_performance_checks_by_default():
    report = analyze(NONLINEAR)
    assert not any(d.rule_id.startswith("P") for d in report)


def test_analyze_performance_flag_adds_p_diagnostics():
    report = analyze(NONLINEAR, performance=True)
    p_ids = {d.rule_id for d in report if d.rule_id.startswith("P")}
    assert "P002" in p_ids
    assert "P003" in p_ids
    # Appending keeps ids ordered inside each severity-independent sort.
    ids = [d.rule_id for d in report]
    assert ids == sorted(ids, key=lambda i: (i[0] != "D", i))

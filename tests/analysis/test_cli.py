"""The ``python -m repro.analysis`` front end (in-process via ``main``)."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


@pytest.fixture
def bad_program(tmp_path):
    path = tmp_path / "bad.dl"
    path.write_text("p(X, Y) :- root(X).\n")  # D001 unsafe head variable
    return path


@pytest.fixture
def warn_program(tmp_path):
    path = tmp_path / "warn.dl"
    path.write_text("p(X) :- root(X), firstchild(X, Y).\n")  # D005 singleton
    return path


def test_examples_directory_analyzes_clean(capsys):
    assert main([str(EXAMPLES)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "program(s)" in out


def test_error_findings_set_the_exit_status(bad_program, capsys):
    assert main([str(bad_program)]) == 1
    out = capsys.readouterr().out
    assert "D001" in out
    assert "1 error(s)" in out


def test_warnings_pass_unless_strict(warn_program):
    assert main([str(warn_program)]) == 0
    assert main(["--strict", str(warn_program)]) == 1


def test_json_output_is_machine_readable(bad_program, capsys):
    assert main(["--json", str(bad_program)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and len(payload) == 1
    [report] = payload
    rule_ids = {d["rule_id"] for d in report["diagnostics"]}
    assert "D001" in rule_ids


def test_kind_flag_forces_the_language(tmp_path, capsys):
    # This parses as datalog but is meant as Elog; forcing the kind
    # surfaces the Elog syntax error instead of datalog diagnostics.
    path = tmp_path / "ambiguous.txt"
    path.write_text("p(X) :- root(X).\n")
    assert main(["--kind", "datalog", str(path)]) == 0
    assert main(["--kind", "elog", str(path)]) == 1
    assert "E000" in capsys.readouterr().out


def test_scans_a_single_python_file(capsys):
    assert main([str(EXAMPLES / "quickstart.py")]) == 0
    out = capsys.readouterr().out
    assert "quickstart.py" in out


def test_module_entry_point_runs(bad_program):
    completed = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(bad_program)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 1
    assert "D001" in completed.stdout

"""Per-rule coverage of the ``D0xx`` datalog checks.

Every rule id gets (a) a seeded-bad program that triggers it and (b) a
clean program that does not — so a check can neither silently die nor
grow false positives without a test noticing.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ERROR,
    INFO,
    TREE_SIGNATURE,
    WARNING,
    analyze,
    check_program,
)
from repro.analysis.diagnostics import RULE_CATALOG
from repro.datalog.parser import parse_program

CLEAN_TEXT = """
Italic(X) :- label_i(X).
Italic(X) :- Italic(X0), firstchild(X0, X).
Italic(X) :- Italic(X0), nextsibling(X0, X).
"""


def rules_fired(text, **kwargs):
    report = check_program(parse_program(text), **kwargs)
    return {diagnostic.rule_id for diagnostic in report}


def diagnostics_for(text, rule_id, **kwargs):
    return [
        diagnostic
        for diagnostic in check_program(parse_program(text), **kwargs)
        if diagnostic.rule_id == rule_id
    ]


def test_clean_program_only_reports_the_fragment_info():
    report = check_program(
        parse_program(CLEAN_TEXT),
        edb=TREE_SIGNATURE,
        query_predicates=["Italic"],
    )
    assert [d.rule_id for d in report] == ["D008"]
    assert report[0].severity == INFO


# ---------------------------------------------------------------------------
# D000 syntax
# ---------------------------------------------------------------------------


def test_d000_syntax_error_report_carries_the_position():
    report = analyze("p(X) :- q(X", kind="datalog")
    assert [d.rule_id for d in report] == ["D000"]
    assert report.has_errors
    assert report.diagnostics[0].span is not None


def test_d000_not_reported_for_parseable_text():
    assert "D000" not in {d.rule_id for d in analyze(CLEAN_TEXT, kind="datalog")}


# ---------------------------------------------------------------------------
# D001 safety
# ---------------------------------------------------------------------------


def test_d001_names_the_unbound_head_variable():
    [diagnostic] = diagnostics_for("p(X, Y) :- e(X).", "D001")
    assert diagnostic.severity == ERROR
    assert "Y" in diagnostic.message
    assert "X" not in diagnostic.message.split("head variable(s)")[1].split("never")[0]


def test_d001_names_the_unbound_negated_variable():
    [diagnostic] = diagnostics_for("p(X) :- e(X), not f(Y).", "D001")
    assert "Y" in diagnostic.message
    assert "negated-body" in diagnostic.message


def test_d001_clean_for_safe_rules():
    assert "D001" not in rules_fired("p(X) :- e(X), not f(X).")


# ---------------------------------------------------------------------------
# D002 stratification
# ---------------------------------------------------------------------------


def test_d002_reports_the_negative_cycle():
    text = """
    win(X) :- move(X, Y), not win(Y).
    """
    [diagnostic] = diagnostics_for(text, "D002")
    assert diagnostic.severity == ERROR
    assert "win" in diagnostic.message
    assert "-[not]->" in diagnostic.message


def test_d002_reports_a_longer_cycle_through_both_predicates():
    text = """
    p(X) :- e(X), not q(X).
    q(X) :- p(X).
    """
    [diagnostic] = diagnostics_for(text, "D002")
    assert "p" in diagnostic.message and "q" in diagnostic.message


def test_d002_clean_for_stratified_negation():
    text = """
    q(X) :- e(X).
    p(X) :- f(X), not q(X).
    """
    assert "D002" not in rules_fired(text)


# ---------------------------------------------------------------------------
# D003 arities
# ---------------------------------------------------------------------------


def test_d003_reports_both_arities():
    text = """
    p(X) :- q(X, Y), r(Y).
    s(X) :- q(X).
    """
    [diagnostic] = diagnostics_for(text, "D003")
    assert "q/1" in diagnostic.message and "q/2" in diagnostic.message
    assert diagnostic.subject == "q"


def test_d003_clean_when_arities_agree():
    assert "D003" not in rules_fired("p(X) :- q(X, Y), r(Y).\ns(X) :- q(X, X).")


# ---------------------------------------------------------------------------
# D004 underivable body atoms
# ---------------------------------------------------------------------------


def test_d004_catches_a_label_typo_against_the_tree_signature():
    [diagnostic] = diagnostics_for("p(X) :- labell_i(X).", "D004", edb=TREE_SIGNATURE)
    assert diagnostic.severity == ERROR
    assert "labell_i" in diagnostic.message


def test_d004_suggests_the_close_match():
    text = """
    reachable(X) :- root(X).
    reachable(X) :- reachible(X0), child(X0, X).
    """
    [diagnostic] = diagnostics_for(text, "D004", edb=TREE_SIGNATURE)
    assert "did you mean 'reachable'" in diagnostic.message


def test_d004_exempts_engine_builtins_and_label_relations():
    text = "p(X) :- label_weird(X), lt(X, X)."
    assert "D004" not in rules_fired(text, edb=TREE_SIGNATURE)


def test_d004_off_without_an_explicit_signature():
    # The engines seed database facts for undeclared predicates, so "not
    # declared EDB" must not be reported as "never holds".
    assert "D004" not in rules_fired("p(X) :- mystery(X).")


# ---------------------------------------------------------------------------
# D005 singleton variables
# ---------------------------------------------------------------------------


def test_d005_reports_the_singleton():
    [diagnostic] = diagnostics_for("p(X) :- e(X), f(X, Y).", "D005")
    assert diagnostic.severity == WARNING
    assert "Y" in diagnostic.message


def test_d005_respects_the_underscore_convention():
    assert "D005" not in rules_fired("p(X) :- e(X), f(X, _Y).")


# ---------------------------------------------------------------------------
# D006 cartesian products
# ---------------------------------------------------------------------------


def test_d006_reports_variable_disjoint_atom_groups():
    [diagnostic] = diagnostics_for("p(X, Y) :- e(X), f(Y).", "D006")
    assert diagnostic.severity == WARNING
    assert "cartesian" in diagnostic.message


def test_d006_clean_when_atoms_share_variables():
    assert "D006" not in rules_fired("p(X, Y) :- e(X), f(X, Y).")


# ---------------------------------------------------------------------------
# D007 dead rules
# ---------------------------------------------------------------------------


def test_d007_reports_predicates_unreachable_from_the_query():
    text = """
    answer(X) :- e(X).
    orphan(X) :- f(X).
    """
    [diagnostic] = diagnostics_for(text, "D007", query_predicates=["answer"])
    assert diagnostic.subject == "orphan"


def test_d007_follows_dependencies_transitively():
    text = """
    answer(X) :- helper(X).
    helper(X) :- e(X).
    """
    assert "D007" not in rules_fired(text, query_predicates=["answer"])


def test_d007_off_without_query_predicates():
    assert "D007" not in rules_fired("a(X) :- e(X).\nb(X) :- f(X).")


# ---------------------------------------------------------------------------
# D008 fragment classification
# ---------------------------------------------------------------------------


def test_d008_tmnf_program_gets_the_linear_time_verdict():
    report = check_program(parse_program(CLEAN_TEXT), edb=TREE_SIGNATURE)
    [diagnostic] = [d for d in report if d.rule_id == "D008"]
    assert diagnostic.severity == INFO
    assert "linear-time" in diagnostic.message


def test_d008_non_monadic_program_names_why_it_leaves_the_fragment():
    text = "pair(X, Y) :- e(X), e(Y)."
    [diagnostic] = diagnostics_for(text, "D008")
    assert "leaves the linear-time fragment" in diagnostic.message
    assert "semi-naive" in diagnostic.message


# ---------------------------------------------------------------------------
# D009 duplicate rules
# ---------------------------------------------------------------------------


def test_d009_reports_the_duplicate():
    text = """
    p(X) :- e(X).
    p(X) :- e(X).
    """
    [diagnostic] = diagnostics_for(text, "D009")
    assert diagnostic.severity == WARNING


def test_d009_clean_for_distinct_rules():
    assert "D009" not in rules_fired("p(X) :- e(X).\np(X) :- f(X).")


# ---------------------------------------------------------------------------
# D010 EDB-head redefinition
# ---------------------------------------------------------------------------


def test_d010_rejects_rules_deriving_into_the_tree_signature():
    [diagnostic] = diagnostics_for("root(X) :- leaf(X).", "D010", edb=TREE_SIGNATURE)
    assert diagnostic.severity == ERROR
    assert "root" in diagnostic.message


def test_d010_off_without_an_explicit_signature():
    assert "D010" not in rules_fired("root(X) :- leaf(X).")


# ---------------------------------------------------------------------------
# Catalog hygiene
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rule_id", sorted(RULE_CATALOG))
def test_every_rule_id_has_a_one_line_description(rule_id):
    assert RULE_CATALOG[rule_id].strip()


def test_diagnostics_are_ordered_by_rule_id():
    text = """
    dup(X) :- e(X).
    dup(X) :- e(X).
    unsafe(X, Y) :- e(X).
    """
    ids = [d.rule_id for d in check_program(parse_program(text))]
    assert ids == sorted(ids)

"""Golden-tested explain() snapshots plus the Session/Pipeline surfaces.

Every ``examples/*.py`` file gets one golden snapshot under
``goldens/explain/``: the rendered explain plan of each embedded program
(or its "not explainable" verdict for Elog wrappers outside the
translatable core fragment).  Regenerate after an intentional change
with::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/analysis/test_explain.py

and review the diff — the snapshots are the contract that adornments,
join orders, index advice and cardinality estimates stay deterministic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import Pipeline, Session
from repro.analysis.explain import ExplainReport, explain
from repro.analysis.scan import scan_file
from repro.elog.to_mdatalog import ElogTranslationError
from repro.html import parse_html
from repro.mdatalog import MonadicProgram

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
GOLDENS = Path(__file__).resolve().parent / "goldens" / "explain"
EXAMPLE_FILES = sorted(EXAMPLES.glob("*.py"))

TC_TEXT = """
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
"""


def _explain_text(path: Path) -> str:
    """The snapshot text for one example file (stable, path-independent)."""
    sections = []
    for scanned in scan_file(str(path)):
        label = f"{path.name}:{scanned.name}"
        try:
            report = explain(scanned.text)
        except ElogTranslationError as error:
            sections.append(f"explain {label}\nnot explainable: {error}\n")
        else:
            sections.append(report.render(label) + "\n")
    if not sections:
        return "(no embedded programs)\n"
    return "\n".join(sections)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_explain_matches_the_golden_snapshot(path):
    actual = _explain_text(path)
    golden = GOLDENS / (path.stem + ".txt")
    if os.environ.get("REGEN_GOLDENS"):
        golden.parent.mkdir(parents=True, exist_ok=True)
        golden.write_text(actual, encoding="utf-8")
    expected = golden.read_text(encoding="utf-8")
    assert actual == expected, (
        f"explain snapshot drifted for {path.name}; if intentional, "
        "regenerate with REGEN_GOLDENS=1 and review the diff"
    )


def test_every_golden_belongs_to_a_current_example():
    stems = {path.stem for path in EXAMPLE_FILES}
    stale = [p.name for p in GOLDENS.glob("*.txt") if p.stem not in stems]
    assert not stale, f"golden snapshots without an example file: {stale}"


# ---------------------------------------------------------------------------
# Determinism and the structured views
# ---------------------------------------------------------------------------


def test_explain_renders_deterministically():
    first = explain(TC_TEXT)
    second = explain(TC_TEXT)
    assert first.render("tc") == second.render("tc")
    assert first.to_json("tc") == second.to_json("tc")


def test_explain_json_is_machine_readable():
    payload = json.loads(explain(TC_TEXT).to_json("tc"))
    assert payload["name"] == "tc"
    assert payload["strata"] == 1
    assert payload["index_advice"] == {"e": [[1]], "tc": [[0]]}
    assert {rule["head_predicate"] for rule in payload["rules"]} == {"tc"}


# ---------------------------------------------------------------------------
# Session / Pipeline surfaces
# ---------------------------------------------------------------------------


def test_session_explain_caches_by_program_content():
    session = Session()
    first = session.explain(TC_TEXT)
    second = session.explain(TC_TEXT)
    assert isinstance(first, ExplainReport)
    assert first is second  # served from the session's analysis cache


def test_session_explain_accepts_monadic_programs():
    program = MonadicProgram.parse(
        """
        italic(X) :- label_i(X).
        italic(X) :- italic(X0), firstchild(X0, X).
        """,
        query_predicates=["italic"],
    )
    report = Session().explain(program)
    estimated = dict(report.estimates)
    assert "label_i" in estimated
    assert any(rule.head_predicate == "italic" for rule in report.rules)


def test_pipeline_explain_reports_per_stage():
    program = MonadicProgram.parse(
        "italic(X) :- label_i(X).", query_predicates=["italic"]
    )
    supplier = lambda: parse_html("<html><i>x</i></html>", url="doc.test")
    pipeline = (
        Pipeline.builder("docs")
        .query("stage", program, supplier)
        .build()
    )
    reports = pipeline.explain()
    assert list(reports) == ["stage"]
    assert isinstance(reports["stage"], ExplainReport)


def test_pipeline_explain_uses_the_bound_sessions_cache():
    session = Session()
    program = MonadicProgram.parse(
        "italic(X) :- label_i(X).", query_predicates=["italic"]
    )
    supplier = lambda: parse_html("<html><i>x</i></html>", url="doc.test")
    pipeline = (
        Pipeline.builder("docs", session=session)
        .query("stage", program, supplier)
        .build()
    )
    assert pipeline.explain()["stage"] is session.explain(program)

"""Per-rule coverage of the ``E0xx`` Elog wrapper checks.

Each rule id gets a seeded-bad wrapper that triggers it and a clean
wrapper that does not.  The Figure 5 eBay wrapper doubles as the
canonical clean program (its ``\\var[Y]`` regvar bindings exercise the
trickiest part of E004).
"""

from __future__ import annotations

from repro.analysis import ERROR, WARNING, analyze, check_elog_program
from repro.elog.concepts import ConceptRegistry
from repro.elog.figure5 import FIGURE5_TEXT
from repro.elog.parser import parse_elog

DOCUMENT_RULE = 'tableseq(S, X) <- document("www.example.com/", S), subelem(S, .table, X)'


def program(*rules):
    return parse_elog("\n".join((DOCUMENT_RULE,) + rules))


def diagnostics_for(rule_id, *rules, **kwargs):
    return [
        diagnostic
        for diagnostic in check_elog_program(program(*rules), **kwargs)
        if diagnostic.rule_id == rule_id
    ]


def test_figure5_analyzes_clean():
    assert check_elog_program(parse_elog(FIGURE5_TEXT)) == []


# ---------------------------------------------------------------------------
# E000 syntax
# ---------------------------------------------------------------------------


def test_e000_syntax_error_report():
    report = analyze("record(S, X <- nonsense", kind="elog")
    assert [d.rule_id for d in report] == ["E000"]
    assert report.has_errors


def test_e000_not_reported_for_parseable_wrappers():
    assert not analyze(FIGURE5_TEXT, kind="elog").has_errors


# ---------------------------------------------------------------------------
# E001 undefined parent pattern
# ---------------------------------------------------------------------------


def test_e001_reports_the_parent_typo_with_a_suggestion():
    [diagnostic] = diagnostics_for(
        "E001",
        "record(S, X) <- tabelseq(_, S), subelem(S, .table, X)",
    )
    assert diagnostic.severity == ERROR
    assert "'tabelseq'" in diagnostic.message
    assert "did you mean 'tableseq'" in diagnostic.message


def test_e001_clean_when_the_parent_is_defined():
    assert not diagnostics_for(
        "E001",
        "record(S, X) <- tableseq(_, S), subelem(S, .table, X)",
    )


# ---------------------------------------------------------------------------
# E002 dead patterns
# ---------------------------------------------------------------------------


def test_e002_reports_a_parent_cycle_detached_from_the_root():
    diagnostics = diagnostics_for(
        "E002",
        "ping(S, X) <- pong(_, S), subelem(S, .td, X)",
        "pong(S, X) <- ping(_, S), subelem(S, .td, X)",
    )
    assert {d.subject for d in diagnostics} == {"ping", "pong"}
    assert all("dead" in d.message for d in diagnostics)


def test_e002_clean_for_a_grounded_chain():
    assert not diagnostics_for(
        "E002",
        "record(S, X) <- tableseq(_, S), subelem(S, .table, X)",
        "cell(S, X) <- record(_, S), subelem(S, .td, X)",
    )


# ---------------------------------------------------------------------------
# E003 undefined pattern references
# ---------------------------------------------------------------------------


def test_e003_positive_reference_never_holds():
    [diagnostic] = diagnostics_for(
        "E003",
        "bids(S, X) <- tableseq(_, S), subelem(S, .td, X),"
        " before(S, X, .td, 0, 30, Y, _), cost(_, Y)",
    )
    assert diagnostic.severity == ERROR
    assert diagnostic.subject == "cost"
    assert "never holds" in diagnostic.message


def test_e003_clean_when_the_referenced_pattern_exists():
    assert not diagnostics_for(
        "E003",
        "cost(S, X) <- tableseq(_, S), subelem(S, .td, X)",
        "bids(S, X) <- tableseq(_, S), subelem(S, .td, X),"
        " before(S, X, .td, 0, 30, Y, _), cost(_, Y)",
    )


# ---------------------------------------------------------------------------
# E004 unbound condition variables
# ---------------------------------------------------------------------------


def test_e004_reports_a_concept_over_an_unbound_variable():
    [diagnostic] = diagnostics_for(
        "E004",
        "price(S, X) <- tableseq(_, S), subelem(S, .td, X), isCurrency(Z)",
    )
    assert diagnostic.severity == ERROR
    assert diagnostic.subject == "Z"
    assert "isCurrency" in diagnostic.message


def test_e004_accepts_regvar_bindings_from_the_extraction_path():
    # Figure 5's price rule: \var[Y] inside the element path binds Y.
    assert not diagnostics_for(
        "E004",
        r"price(S, X) <- tableseq(_, S),"
        r" subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X),"
        r" isCurrency(Y)",
    )


def test_e004_accepts_bind_slots_and_literal_arguments():
    assert not diagnostics_for(
        "E004",
        "cost(S, X) <- tableseq(_, S), subelem(S, .td, X)",
        "bids(S, X) <- tableseq(_, S), subelem(S, .td, X),"
        " before(S, X, .td, 0, 30, Y, _), cost(_, Y)",
    )


# ---------------------------------------------------------------------------
# E005 unknown concepts
# ---------------------------------------------------------------------------


def test_e005_reports_the_concept_typo_with_a_suggestion():
    [diagnostic] = diagnostics_for(
        "E005",
        r"price(S, X) <- tableseq(_, S),"
        r" subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X),"
        r" isCurrrency(Y)",
    )
    assert diagnostic.severity == ERROR
    assert diagnostic.subject == "isCurrrency"
    assert "did you mean 'isCurrency'" in diagnostic.message


def test_e005_respects_a_custom_registry():
    registry = ConceptRegistry()
    registry.register_function("isWidget", lambda value: True)
    diagnostics = diagnostics_for(
        "E005",
        r"item(S, X) <- tableseq(_, S),"
        r" subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X),"
        r" isWidget(Y)",
        concepts=registry,
    )
    assert not diagnostics


# ---------------------------------------------------------------------------
# E006 duplicate rules
# ---------------------------------------------------------------------------


def test_e006_reports_the_textual_duplicate():
    [diagnostic] = diagnostics_for(
        "E006",
        "record(S, X) <- tableseq(_, S), subelem(S, .table, X)",
        "record(S, X) <- tableseq(_, S), subelem(S, .table, X)",
    )
    assert diagnostic.severity == WARNING
    assert diagnostic.subject == "record"


def test_e006_clean_for_distinct_disjunctive_rules():
    assert not diagnostics_for(
        "E006",
        "record(S, X) <- tableseq(_, S), subelem(S, .table, X)",
        "record(S, X) <- tableseq(_, S), subelem(S, .tr, X)",
    )

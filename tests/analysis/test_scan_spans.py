"""Scanner span reporting: diagnostics land on enclosing-file coordinates.

Before this fix, a diagnostic for a program embedded in a ``.py`` file
carried the snippet's own 1-based line numbers — "line 2" for a constant
defined at line 40 of the file — so CLI output was unclickable.  The
scanner now shifts every span by the string literal's position.
"""

from __future__ import annotations

from repro.analysis.scan import ScannedProgram, analyze_scanned, scan_source
from repro.datalog.ast import Span

SOURCE = '''\
"""A module whose program constant sits well below line one."""

GREETING = "hello"


PROGRAM = """
p(X) :- root(X), firstchild(X, Y).
"""
'''


def test_scanner_records_the_literal_line():
    [scanned] = scan_source(SOURCE, "module.py")
    assert scanned.name == "PROGRAM"
    assert scanned.line == 6  # the line of the opening triple quote


def test_diagnostic_spans_are_shifted_into_the_file():
    [(scanned, report)] = analyze_scanned(scan_source(SOURCE, "module.py"))
    [singleton] = [d for d in report if d.rule_id == "D005"]
    # The rule sits on snippet line 2 = file line 7 (opening quote on 6).
    assert singleton.span is not None
    assert singleton.span.line == 7


def test_map_span_shifts_lines_and_keeps_columns():
    scanned = ScannedProgram(
        path="module.py", name="P", line=40, kind="datalog", text=""
    )
    mapped = scanned.map_span(Span(2, 5, 3, 9))
    assert mapped == Span(41, 5, 42, 9)
    # An unset end_line (0) stays unset rather than being shifted.
    assert scanned.map_span(Span(1, 1)).end_line == 0


def test_spanless_diagnostics_pass_through_unchanged():
    # A whole-program finding (no span) must survive the shift untouched.
    source = 'P = """\np(X) :- root(X), firstchild(X, Y).\n"""\n'
    [(_, report)] = analyze_scanned(scan_source(source, "m.py"))
    assert any(d.span is None for d in report)  # D008 fragment info

"""``Session.analyze``: dispatch, per-fingerprint caching, and the
``on_diagnostics`` policy surfaced through ``EngineOptions`` and the
pipeline builder."""

from __future__ import annotations

import warnings

import pytest

from repro import AnalysisError, EngineOptions, Session
from repro.analysis import AnalysisReport, DiagnosticWarning
from repro.api import Pipeline
from repro.datalog.parser import parse_program
from repro.elog.parser import parse_elog
from repro.mdatalog import MonadicProgram
from repro.server.pipeline import PipelineError
from repro.web.fetcher import SimulatedWeb

CLEAN_TEXT = """
Italic(X) :- label_i(X).
Italic(X) :- Italic(X0), firstchild(X0, X).
Italic(X) :- Italic(X0), nextsibling(X0, X).
"""

# D003 (arity clash) is error severity for the analyzer but tolerated by
# the engine — exactly the kind of slip the policy layer exists for.
ARITY_CLASH_TEXT = """
p(X) :- q(X, Y), r(Y).
s(X) :- q(X).
"""

WRAPPER_TEXT = """
offer(S, X)  <- document(_, S), subelem(S, ?.tr, X)
model(S, X)  <- offer(_, S), subelem(S, (?.td, [(class, model, exact)]), X)
"""

# E001/E002: hangs off an undefined parent, so it can never extract.
BAD_WRAPPER_TEXT = "item(S, X) <- record(_, S), subelem(S, .td, X)"

ITALIC = MonadicProgram.parse(CLEAN_TEXT, query_predicates=["Italic"])


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------


def test_analyze_dispatches_all_four_program_shapes():
    session = Session()
    assert session.analyze(parse_program(CLEAN_TEXT)).kind == "datalog"
    assert session.analyze(ITALIC).kind == "datalog"
    assert session.analyze(parse_elog(WRAPPER_TEXT)).kind == "elog"
    assert session.analyze(CLEAN_TEXT).kind == "datalog"  # sniffed
    assert session.analyze(WRAPPER_TEXT).kind == "elog"  # sniffed
    with pytest.raises(TypeError):
        session.analyze(42)


def test_monadic_programs_are_checked_against_the_tree_signature():
    report = Session().analyze(ITALIC)
    assert not report.has_errors
    assert report.fragment is not None and report.fragment.tmnf


def test_unparseable_text_yields_a_syntax_report_not_an_exception():
    session = Session()
    report = session.analyze("p(X) :- q(X", kind="datalog")
    assert isinstance(report, AnalysisReport)
    assert [d.rule_id for d in report] == ["D000"]
    assert [d.rule_id for d in session.analyze("item(S, X <-", kind="elog")] == ["E000"]


# ---------------------------------------------------------------------------
# Caching: one analysis per program fingerprint
# ---------------------------------------------------------------------------


def test_datalog_reports_are_cached_per_content_fingerprint():
    session = Session()
    first = session.analyze(parse_program(CLEAN_TEXT))
    info = session.analysis_info()["datalog"]
    assert (info.hits, info.misses) == (0, 1)
    # A content-equal but distinct parse must be a pure cache hit.
    second = session.analyze(parse_program(CLEAN_TEXT))
    info = session.analysis_info()["datalog"]
    assert (info.hits, info.misses) == (1, 1)
    assert second is first


def test_datalog_cache_distinguishes_edb_and_query_context():
    session = Session()
    program = parse_program(CLEAN_TEXT)
    session.analyze(program)
    session.analyze(program, edb="tree")
    session.analyze(program, edb="tree", query_predicates=["Italic"])
    assert session.analysis_info()["datalog"].misses == 3
    session.analyze(program, edb="tree")
    assert session.analysis_info()["datalog"].hits == 1


def test_elog_reports_are_cached_per_wrapper_fingerprint():
    session = Session()
    first = session.analyze(parse_elog(WRAPPER_TEXT))
    second = session.analyze(parse_elog(WRAPPER_TEXT))
    info = session.analysis_info()["elog"]
    assert (info.hits, info.misses) == (1, 1)
    assert second is first


def test_text_input_reuses_the_session_parse_memos_and_the_report_cache():
    session = Session()
    assert session.analyze(WRAPPER_TEXT) is session.analyze(WRAPPER_TEXT)
    assert session.analyze(CLEAN_TEXT) is session.analyze(CLEAN_TEXT)


# ---------------------------------------------------------------------------
# Policy: warn (default)
# ---------------------------------------------------------------------------


def test_default_policy_warns_on_error_findings_at_query_time():
    session = Session()
    assert session.options.on_diagnostics == "warn"
    with pytest.warns(DiagnosticWarning, match="D003"):
        session.query(parse_program(ARITY_CLASH_TEXT), {"q": {(1, 2)}})


def test_clean_programs_query_silently_under_warn():
    session = Session()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DiagnosticWarning)
        session.query(parse_program("p(X) :- e(X)."), {"e": {(1,)}})


# ---------------------------------------------------------------------------
# Policy: strict
# ---------------------------------------------------------------------------


def test_strict_policy_raises_at_query_time_with_the_report_attached():
    session = Session(EngineOptions(on_diagnostics="strict"))
    with pytest.raises(AnalysisError) as excinfo:
        session.query(parse_program(ARITY_CLASH_TEXT), {"q": {(1, 2)}})
    assert excinfo.value.report.has_errors
    assert "D003" in str(excinfo.value)


def test_strict_policy_raises_when_building_a_bad_wrapper():
    session = Session(EngineOptions(on_diagnostics="strict"))
    with pytest.raises(AnalysisError, match="E001"):
        session.wrapper(BAD_WRAPPER_TEXT)


def test_strict_policy_passes_clean_programs():
    session = Session(EngineOptions(on_diagnostics="strict"))
    result = session.query(parse_program("p(X) :- e(X)."), {"e": {(1,)}})
    assert result.tuples("p") == {(1,)}
    session.wrapper(WRAPPER_TEXT)  # must not raise


# ---------------------------------------------------------------------------
# Policy: ignore
# ---------------------------------------------------------------------------


def test_ignore_policy_runs_bad_programs_silently():
    session = Session(EngineOptions(on_diagnostics="ignore"))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DiagnosticWarning)
        session.query(parse_program(ARITY_CLASH_TEXT), {"q": {(1, 2)}})
        session.wrapper(BAD_WRAPPER_TEXT)


def test_options_reject_unknown_policies():
    with pytest.raises(ValueError, match="on_diagnostics"):
        EngineOptions(on_diagnostics="panic")


# ---------------------------------------------------------------------------
# Pipeline builder integration
# ---------------------------------------------------------------------------


def _bad_wrapper_builder():
    web = SimulatedWeb()
    web.publish("site.test/", "<html><body></body></html>")
    return Pipeline.builder("p").wrapper("w", BAD_WRAPPER_TEXT, web, "site.test/")


def test_pipeline_build_warns_by_default():
    builder = _bad_wrapper_builder()
    with pytest.warns(DiagnosticWarning, match="pipeline stage 'w'"):
        builder.build()


def test_pipeline_build_strict_raises():
    builder = _bad_wrapper_builder()
    with pytest.raises(AnalysisError, match="E00"):
        builder.build(on_diagnostics="strict")


def test_pipeline_build_ignore_skips_analysis():
    builder = _bad_wrapper_builder()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DiagnosticWarning)
        builder.build(on_diagnostics="ignore")


def test_pipeline_build_rejects_unknown_policies():
    builder = _bad_wrapper_builder()
    with pytest.raises(PipelineError, match="on_diagnostics"):
        builder.build(on_diagnostics="panic")


def test_session_bound_builder_inherits_the_session_policy():
    web = SimulatedWeb()
    web.publish("site.test/", "<html><body></body></html>")
    session = Session(EngineOptions(on_diagnostics="strict"))
    builder = Pipeline.builder("p", session)
    # The session enforces its policy as soon as the wrapper is built.
    with pytest.raises(AnalysisError):
        builder.wrapper("w", BAD_WRAPPER_TEXT, web, "site.test/")

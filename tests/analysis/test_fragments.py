"""Fragment classification: monadic / TMNF / linear-time verdicts (D008).

The classifier maps the paper's hierarchy onto concrete programs: TMNF
(Def 2.6) runs in linear time (Theorem 2.4), every monadic datalog
program over trees rewrites into TMNF (Theorem 2.7), and TMNF programs
compile to tree automata (Theorem 2.5).
"""

from __future__ import annotations

from repro.analysis import classify
from repro.analysis.fragments import FragmentReport
from repro.datalog.parser import parse_program

TMNF_TEXT = """
Italic(X) :- label_i(X).
Italic(X) :- Italic(X0), firstchild(X0, X).
Italic(X) :- Italic(X0), nextsibling(X0, X).
"""


def test_tmnf_program_is_linear_time_and_automata_compilable():
    report = classify(parse_program(TMNF_TEXT))
    assert report.monadic
    assert report.tmnf
    assert report.linear_time
    assert report.automata_compilable
    assert "linear-time" in report.verdict()
    assert "Theorem 2.4" in report.verdict()


def test_monadic_but_not_tmnf_is_rewritable():
    # Two tree atoms in one body: monadic, outside TMNF, Theorem 2.7
    # rewrites it.
    text = """
    Gap(X) :- label_i(X0), firstchild(X0, X1), nextsibling(X1, X).
    """
    report = classify(parse_program(text))
    assert report.monadic
    assert not report.tmnf
    assert report.tmnf_rewritable
    assert report.linear_time
    # Rewritability keeps it inside the linear-time fragment, so no
    # "leaves the fragment because..." reasons accumulate.
    assert report.reasons == ()


def test_non_monadic_program_leaves_the_fragment():
    report = classify(parse_program("pair(X, Y) :- e(X), e(Y)."))
    assert not report.monadic
    assert not report.tmnf
    assert not report.linear_time
    verdict = report.verdict()
    assert "leaves the linear-time fragment" in verdict
    assert any("pair" in reason for reason in report.reasons)


def test_stratified_negation_is_flagged_but_not_fatal_to_stratifiability():
    text = """
    q(X) :- label_i(X).
    p(X) :- label_b(X), not q(X).
    """
    report = classify(parse_program(text))
    assert report.uses_negation
    assert report.stratifiable


def test_unstratifiable_program_is_reported():
    report = classify(parse_program("win(X) :- move(X, Y), not win(Y)."))
    assert report.uses_negation
    assert not report.stratifiable
    assert not report.linear_time


def test_report_round_trips_to_dict():
    report = classify(parse_program(TMNF_TEXT))
    data = report.to_dict()
    assert data["tmnf"] is True
    assert data["verdict"] == report.verdict()
    assert isinstance(report, FragmentReport)

"""Storage backends are invisible to the fixpoint (and to every cache).

The columnar join core (``EngineOptions(storage="columnar")``, the
default) is a pure storage/executor change: randomised programs (with
recursion, stratified negation, and comparison builtins) over randomised
databases must produce exactly the fixpoint of the tuple-at-a-time layer
(``storage="tuple"``) and of the seed nested-loop scan
(``use_index=False``) — and the same must hold through the public
:class:`repro.api.Session` surface, for both ``index_keys`` modes, and
for the caching layers: the :class:`~repro.datalog.cache.FixpointCache`
and the :class:`~repro.datalog.registry.PlanRegistry` key on program and
database *content*, so their entries are storage-invariant by
construction.

The program/database generators are shared with
``test_indexed_join_equivalence`` (same schema, same shrinking behaviour).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.datalog import (
    EngineOptions,
    PlanRegistry,
    SemiNaiveEngine,
    parse_program,
)

from .test_indexed_join_equivalence import DOMAIN, databases, programs

STORAGE_OPTIONS = {
    "columnar": EngineOptions(storage="columnar"),
    "tuple": EngineOptions(storage="tuple"),
    "nested": EngineOptions(use_index=False),
}


@settings(max_examples=60, deadline=None)
@given(program=programs(), database=databases())
def test_columnar_tuple_and_nested_loop_fixpoints_agree(program, database):
    results = {
        name: SemiNaiveEngine(program, options=options).evaluate(
            {predicate: set(facts) for predicate, facts in database.items()}
        )
        for name, options in STORAGE_OPTIONS.items()
    }
    assert results["columnar"] == results["tuple"]
    assert results["tuple"] == results["nested"]


@settings(max_examples=30, deadline=None)
@given(program=programs(), database=databases())
def test_index_key_modes_agree(program, database):
    full = SemiNaiveEngine(
        program, options=EngineOptions(index_keys="full")
    ).evaluate(database)
    prefix = SemiNaiveEngine(
        program, options=EngineOptions(index_keys="prefix")
    ).evaluate(database)
    assert full == prefix


@settings(max_examples=25, deadline=None)
@given(program=programs(), database=databases())
def test_storage_backends_agree_through_session(program, database):
    answers = {}
    for name, options in STORAGE_OPTIONS.items():
        result = Session(options=options).query(program, database)
        answers[name] = {
            predicate: result.evaluation.query(predicate)
            for predicate in result.evaluation.predicates()
        }
    assert answers["columnar"] == answers["tuple"]
    assert answers["tuple"] == answers["nested"]


@settings(max_examples=25, deadline=None)
@given(program=programs(), database=databases())
def test_fixpoint_cache_entries_are_storage_invariant(program, database):
    # The cache keys on database content, never on storage internals: a
    # columnar engine's cached fixpoint must be bit-identical to a fresh
    # tuple engine's, and a re-evaluation must hit (the columnar evaluation
    # did not leak engine-internal state into the keying or the result).
    columnar = SemiNaiveEngine(program, options=STORAGE_OPTIONS["columnar"])
    first = columnar.fixpoint(database)
    before = columnar.fixpoint_cache_info()
    again = columnar.fixpoint(database)
    after = columnar.fixpoint_cache_info()
    assert again is first  # the LRU returned the stored entry itself
    assert after.hits == before.hits + 1
    fresh_tuple = SemiNaiveEngine(program, options=STORAGE_OPTIONS["tuple"])
    assert fresh_tuple.fixpoint(database).facts() == first.facts()


@settings(max_examples=25, deadline=None)
@given(program=programs(), database=databases())
def test_plan_registry_shares_one_compilation_across_storages(program, database):
    # Compiled programs are keyed by content fingerprint only — engines
    # differing in storage backend re-use the *same* compiled plans (the
    # specialised executors are written against the storage protocols),
    # and still agree on the fixpoint.
    registry = PlanRegistry()
    columnar = SemiNaiveEngine(
        program, options=STORAGE_OPTIONS["columnar"], registry=registry
    )
    tupled = SemiNaiveEngine(
        program, options=STORAGE_OPTIONS["tuple"], registry=registry
    )
    if columnar._stratum_plans:
        assert columnar._stratum_plans[0][0] is tupled._stratum_plans[0][0]
    assert columnar.evaluate(database) == tupled.evaluate(database)
    assert registry.info().misses <= 1


@settings(max_examples=30, deadline=None)
@given(database=st.sets(st.tuples(DOMAIN, DOMAIN), min_size=0, max_size=12))
def test_transitive_closure_with_negation_agrees_across_storages(database):
    program = parse_program(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        far(X) :- node(X), not reach(X, X).
        node(X) :- edge(X, Y).
        node(Y) :- edge(X, Y).
        """
    )
    edb = {"edge": set(database)}
    results = [
        SemiNaiveEngine(program, options=options).evaluate(
            {predicate: set(facts) for predicate, facts in edb.items()}
        )
        for options in STORAGE_OPTIONS.values()
    ]
    assert results[0] == results[1] == results[2]

"""Property: analysis-seeded planning is invisible to every fixpoint.

The registry seeds each compiled :class:`RulePlan` with a join plan derived
from static cardinality estimates (:func:`repro.analysis.cost.
seed_rule_plans`) and pre-builds the advised hash indexes before a first
fixpoint.  Join order and index availability are pure evaluation-strategy
choices — so an engine running with seeds must produce *exactly* the
fixpoint of an unseeded engine, over randomised programs (recursion,
stratified negation, comparison builtins) and randomised databases, and
across all three Session backends (semi-naive, monadic, automata).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro import EngineOptions, Session
from repro.automata import leaf_selector_automaton
from repro.datalog import SemiNaiveEngine, tree_database
from repro.mdatalog import MonadicProgram

from tests.properties.test_indexed_join_equivalence import databases, programs
from tests.properties.test_invariants import LABELS, documents

SEEDED = EngineOptions(share_plans=False)
UNSEEDED = EngineOptions(share_plans=False, seed_plans=False)

MDATALOG_TEXT = """
mark(X) :- label_a(X).
mark(X) :- mark(X0), firstchild(X0, X).
mark(X) :- mark(X0), nextsibling(X0, X).
deep(X) :- label_b(B), child(B, X), label_c(X).
"""


@settings(max_examples=60, deadline=None)
@given(program=programs(), database=databases())
def test_seeded_and_unseeded_fixpoints_are_identical(program, database):
    seeded = SemiNaiveEngine(program, options=SEEDED).evaluate(database)
    unseeded = SemiNaiveEngine(program, options=UNSEEDED).evaluate(database)
    assert seeded == unseeded


@settings(max_examples=30, deadline=None)
@given(program=programs(), database=databases())
def test_shared_registry_seeding_matches_private_unseeded(program, database):
    # The default path (shared registry, seeds on) against a fully private,
    # unseeded compilation — the strongest "seeding changes nothing" claim.
    shared = SemiNaiveEngine(program)
    private = SemiNaiveEngine(program, options=UNSEEDED)
    assert shared.evaluate(database) == private.evaluate(database)


@settings(max_examples=25, deadline=None)
@given(document=documents())
def test_seeding_is_invisible_on_the_semi_naive_backend_over_trees(document):
    program = MonadicProgram.parse(MDATALOG_TEXT).to_datalog_program()
    database = tree_database(document)
    seeded = SemiNaiveEngine(program, options=SEEDED).evaluate(database)
    unseeded = SemiNaiveEngine(program, options=UNSEEDED).evaluate(database)
    assert seeded == unseeded


@settings(max_examples=25, deadline=None)
@given(document=documents())
def test_seeding_is_invisible_on_the_monadic_backend(document):
    program = MonadicProgram.parse(MDATALOG_TEXT)
    seeded = Session(SEEDED).query(program, document)
    unseeded = Session(UNSEEDED).query(program, document)
    for predicate in program.query_predicates:
        assert [n.preorder_index for n in seeded.nodes(predicate)] == [
            n.preorder_index for n in unseeded.nodes(predicate)
        ]


@settings(max_examples=25, deadline=None)
@given(document=documents())
def test_seeding_is_invisible_on_the_automata_backend(document):
    automaton = leaf_selector_automaton(LABELS)
    seeded = Session(SEEDED).query(automaton, document, labels=LABELS)
    unseeded = Session(UNSEEDED).query(automaton, document, labels=LABELS)
    assert [n.preorder_index for n in seeded.nodes("selected")] == [
        n.preorder_index for n in unseeded.nodes("selected")
    ]

"""Property-based tests for conjunctive queries and Elog path matching."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cq import evaluate_acyclic, evaluate_backtracking, evaluate_filtered, query
from repro.elog import ElementPath
from repro.tree import Document, Node

LABELS = ("a", "b", "c")


@st.composite
def documents(draw, max_nodes: int = 30):
    node_budget = draw(st.integers(min_value=2, max_value=max_nodes))

    def build(budget):
        node = Node(draw(st.sampled_from(LABELS)))
        remaining = budget - 1
        while remaining > 0 and draw(st.booleans()):
            child_budget = draw(st.integers(min_value=1, max_value=remaining))
            child, used = build(child_budget)
            node.append_child(child)
            remaining -= used
        return node, budget - remaining

    root, _ = build(node_budget)
    return Document(root)


@st.composite
def tree_shaped_queries(draw):
    """Small acyclic unary conjunctive queries."""
    relations = ("child", "child+", "child*", "nextsibling+", "following")
    variable_count = draw(st.integers(min_value=2, max_value=4))
    variables = [f"V{i}" for i in range(variable_count)]
    labels = [(v, draw(st.sampled_from(LABELS))) for v in variables if draw(st.booleans())]
    axes = []
    for index in range(1, variable_count):
        parent = variables[draw(st.integers(min_value=0, max_value=index - 1))]
        relation = draw(st.sampled_from(relations))
        if draw(st.booleans()):
            axes.append((relation, parent, variables[index]))
        else:
            axes.append((relation, variables[index], parent))
    return query(free=[variables[0]], labels=labels, axes=axes)


@given(documents(), tree_shaped_queries())
@settings(max_examples=40, deadline=None)
def test_cq_evaluation_strategies_agree(document, conjunctive_query):
    plain = evaluate_backtracking(conjunctive_query, document)
    filtered = evaluate_filtered(conjunctive_query, document)
    yannakakis = evaluate_acyclic(conjunctive_query, document)
    assert plain == filtered == yannakakis


@given(documents(), st.sampled_from(["?.a", "?.b", ".a", ".a.b", "?.a.?.b", ".*.b"]))
@settings(max_examples=40, deadline=None)
def test_epath_find_targets_consistent_with_match_target(document, path_text):
    path = ElementPath.parse(path_text)
    root = document.root
    found = {id(node) for node, _ in path.find_targets(root)}
    checked = {
        id(node)
        for node in root.iter_descendants()
        if path.match_target(root, node) is not None
    }
    assert found == checked

"""Property-based tests (hypothesis) on the core data structures and on the
cross-formalism equivalences of Figure 6."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.datalog import parse_program, query_program, tree_database
from repro.mdatalog import MonadicProgram, MonadicTreeEvaluator, is_tmnf, to_tmnf
from repro.tree import Document, Node, decode, encode, to_sexpr
from repro.tree.encoding import encoding_round_trips
from repro.xpath import CoreXPathEvaluator, FullXPathEvaluator, NaiveXPathEvaluator

LABELS = ("a", "b", "c")


# ---------------------------------------------------------------------------
# Random document strategy
# ---------------------------------------------------------------------------


@st.composite
def documents(draw, max_nodes: int = 40):
    """Random small documents built from nested label lists."""
    node_budget = draw(st.integers(min_value=1, max_value=max_nodes))

    def build(budget):
        label = draw(st.sampled_from(LABELS))
        node = Node(label)
        remaining = budget - 1
        while remaining > 0 and draw(st.booleans()):
            child_budget = draw(st.integers(min_value=1, max_value=remaining))
            child, used = build(child_budget)
            node.append_child(child)
            remaining -= used
        return node, budget - remaining

    root, _ = build(node_budget)
    return Document(root)


# ---------------------------------------------------------------------------
# Tree invariants
# ---------------------------------------------------------------------------


@given(documents())
@settings(max_examples=40, deadline=None)
def test_document_order_is_a_total_order_consistent_with_structure(document):
    nodes = document.dom
    assert [node.preorder_index for node in nodes] == list(range(len(nodes)))
    for node in nodes:
        for child in node.children:
            assert document.precedes(node, child)
        if node.next_sibling is not None:
            assert document.precedes(node, node.next_sibling)


@given(documents())
@settings(max_examples=40, deadline=None)
def test_firstchild_nextsibling_encoding_round_trips(document):
    assert encoding_round_trips(document)
    assert to_sexpr(decode(encode(document))) == to_sexpr(document)


@given(documents())
@settings(max_examples=40, deadline=None)
def test_leaf_lastsibling_partition_invariants(document):
    for node in document:
        assert node.is_leaf == (len(node.children) == 0)
        if node.parent is not None:
            assert node.is_last_sibling == (node.parent.children[-1] is node)
        else:
            assert not node.is_last_sibling


# ---------------------------------------------------------------------------
# Monadic datalog: pipelines and rewritings agree
# ---------------------------------------------------------------------------


MDATALOG_TEXT = """
mark(X) :- label_a(X).
mark(X) :- mark(X0), firstchild(X0, X).
mark(X) :- mark(X0), nextsibling(X0, X).
deep(X) :- label_b(B), child(B, X), label_c(X).
"""


@given(documents())
@settings(max_examples=25, deadline=None)
def test_ground_pipeline_equals_generic_engine(document):
    program = MonadicProgram.parse(MDATALOG_TEXT)
    fast = MonadicTreeEvaluator(program).evaluate(document)
    slow = MonadicTreeEvaluator(program, force_generic=True).evaluate(document)
    for predicate in program.query_predicates:
        assert [n.preorder_index for n in fast[predicate]] == [
            n.preorder_index for n in slow[predicate]
        ]


@given(documents())
@settings(max_examples=25, deadline=None)
def test_tmnf_rewriting_preserves_query_answers(document):
    program = MonadicProgram.parse(MDATALOG_TEXT)
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    original = MonadicTreeEvaluator(program, force_generic=True).evaluate(document)
    after = MonadicTreeEvaluator(rewritten).evaluate(document)
    for predicate in program.query_predicates:
        assert {n.preorder_index for n in original[predicate]} == {
            n.preorder_index for n in after[predicate]
        }


@given(documents())
@settings(max_examples=25, deadline=None)
def test_monadic_datalog_agrees_with_generic_datalog_over_tree_edb(document):
    program_text = "hit(X) :- label_b(X0), firstchild(X0, X)."
    monadic = MonadicProgram.parse(program_text, query_predicates=["hit"])
    selected = {
        node.preorder_index
        for node in MonadicTreeEvaluator(monadic).select(document, "hit")
    }
    generic = query_program(parse_program(program_text), tree_database(document), "hit")
    assert selected == {value[0] for value in generic}


# ---------------------------------------------------------------------------
# XPath evaluators agree
# ---------------------------------------------------------------------------

XPATH_QUERIES = (
    "//a",
    "//a/b",
    "//a[b]",
    "//a[b and not(c)]",
    "//b[ancestor::a]/following-sibling::c",
    "//c[not(descendant::a)]",
    "//a[.//b or .//c]",
)


@given(documents(), st.sampled_from(XPATH_QUERIES))
@settings(max_examples=60, deadline=None)
def test_linear_naive_and_full_xpath_evaluators_agree(document, query):
    linear = CoreXPathEvaluator(document).evaluate(query)
    naive = NaiveXPathEvaluator(document).evaluate(query)
    full = FullXPathEvaluator(document).evaluate(query)
    linear_ids = [node.preorder_index for node in linear]
    assert linear_ids == [node.preorder_index for node in naive]
    assert linear_ids == [node.preorder_index for node in full]

"""Property-based equivalence of the engine's three join strategies.

Randomised datalog programs (with recursion, stratified negation, and
comparison builtins) over randomised extensional databases must produce the
same fixpoint whether the engine evaluates through compiled rule plans (the
default), the PR-1 per-call indexed join (``use_plans=False``), or the seed
nested-loop scan (``use_index=False``) — plans and indexes are pure
evaluation-strategy changes.  The same holds for *where* the plans come
from: engines sharing one compilation through the registry
(``share_plans=True``, the default) must agree with privately compiled
engines (``share_plans=False``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import SemiNaiveEngine
from repro.datalog.ast import Atom, Constant, Literal, Program, Rule, Variable

# A small fixed schema keeps the generator simple while still exercising
# joins over mixed arities, recursion through IDB predicates, and negation.
EDB_ARITIES = {"e1": 1, "e2": 2, "e3": 2}
IDB_ARITIES = {"p0": 1, "p1": 2, "p2": 1}
IDB_ORDER = ["p0", "p1", "p2"]  # negation only "downwards" => stratifiable
VARIABLES = [Variable(name) for name in ("X", "Y", "Z", "W")]
BUILTINS = ["lt", "le", "eq", "neq", "gt", "ge"]

DOMAIN = st.integers(min_value=0, max_value=5)


def _terms(draw, arity, variable_pool):
    terms = []
    for _ in range(arity):
        if draw(st.booleans()) or not variable_pool:
            if draw(st.integers(min_value=0, max_value=3)) == 0:
                terms.append(Constant(draw(DOMAIN)))
                continue
        terms.append(draw(st.sampled_from(variable_pool or VARIABLES)))
    return tuple(terms)


@st.composite
def rules(draw):
    head_predicate = draw(st.sampled_from(IDB_ORDER))
    head_index = IDB_ORDER.index(head_predicate)

    # 1-3 positive relational literals over EDB predicates and IDB
    # predicates at or below the head's layer (self-recursion allowed); the
    # layering keeps every generated program stratifiable even once negation
    # on strictly lower layers is added below.
    body: list = []
    positive_variables: set = set()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        predicate = draw(
            st.sampled_from(sorted(EDB_ARITIES) + IDB_ORDER[: head_index + 1])
        )
        arity = EDB_ARITIES.get(predicate) or IDB_ARITIES[predicate]
        atom = Atom(predicate, _terms(draw, arity, VARIABLES))
        body.append(Literal(atom))
        positive_variables |= atom.variables()

    bound_pool = sorted(positive_variables, key=str)

    # Optional negated literal over EDB or a strictly lower IDB predicate,
    # with variables drawn from the positive body (safety).
    if bound_pool and draw(st.booleans()):
        candidates = sorted(EDB_ARITIES) + IDB_ORDER[:head_index]
        predicate = draw(st.sampled_from(candidates))
        arity = EDB_ARITIES.get(predicate) or IDB_ARITIES[predicate]
        atom = Atom(predicate, _terms(draw, arity, bound_pool))
        if atom.variables() <= positive_variables:
            body.append(Literal(atom, negated=True))

    # Optional comparison builtin over bound variables / integer constants.
    if bound_pool and draw(st.booleans()):
        builtin = draw(st.sampled_from(BUILTINS))
        atom = Atom(builtin, _terms(draw, 2, bound_pool))
        if atom.variables() <= positive_variables:
            body.append(Literal(atom, negated=draw(st.booleans())))

    # Safe head: every head variable occurs in the positive body.
    head_arity = IDB_ARITIES[head_predicate]
    if bound_pool:
        head_terms = tuple(
            draw(st.sampled_from(bound_pool)) for _ in range(head_arity)
        )
    else:
        head_terms = tuple(Constant(draw(DOMAIN)) for _ in range(head_arity))
    return Rule(Atom(head_predicate, head_terms), tuple(body))


@st.composite
def programs(draw):
    rule_list = draw(st.lists(rules(), min_size=1, max_size=6))
    return Program(rule_list, edb_predicates=frozenset(EDB_ARITIES))


@st.composite
def databases(draw):
    database = {}
    for predicate, arity in EDB_ARITIES.items():
        facts = draw(
            st.sets(
                st.tuples(*([DOMAIN] * arity)),
                min_size=0,
                max_size=8,
            )
        )
        database[predicate] = set(facts)
    return database


@settings(max_examples=60, deadline=None)
@given(program=programs(), database=databases())
def test_planned_indexed_and_nested_loop_fixpoints_agree(program, database):
    planned = SemiNaiveEngine(program).evaluate(database)
    indexed = SemiNaiveEngine(program, use_plans=False).evaluate(database)
    nested = SemiNaiveEngine(program, use_index=False).evaluate(database)
    assert planned == indexed
    assert indexed == nested


@settings(max_examples=40, deadline=None)
@given(program=programs(), database=databases())
def test_shared_registry_fixpoints_match_private_compilation(program, database):
    # Two default engines hit the shared registry (the second reuses the
    # first's compiled plans — same objects); both must compute exactly the
    # fixpoint of a privately compiled engine (share_plans=False), i.e.
    # cross-engine plan sharing is invisible to evaluation.
    shared_first = SemiNaiveEngine(program)
    shared_second = SemiNaiveEngine(program)
    private = SemiNaiveEngine(program, share_plans=False)
    if shared_second._stratum_plans:
        assert (
            shared_second._stratum_plans[0][0] is shared_first._stratum_plans[0][0]
        )
    result = shared_first.evaluate(database)
    assert result == shared_second.evaluate(database)
    assert result == private.evaluate(database)


@settings(max_examples=30, deadline=None)
@given(program=programs(), database=databases())
def test_plan_reuse_across_databases_stays_equivalent(program, database):
    # One engine (compiled plans reused and bucket-memoised across calls)
    # must agree with a fresh nested-loop engine on every database,
    # including after evaluating a different database in between.
    engine = SemiNaiveEngine(program)
    warmup = {predicate: set(list(facts)[:1]) for predicate, facts in database.items()}
    engine.evaluate(warmup)
    planned = engine.evaluate(database)
    nested = SemiNaiveEngine(program, use_index=False).evaluate(database)
    assert planned == nested


@settings(max_examples=30, deadline=None)
@given(database=st.sets(st.tuples(DOMAIN, DOMAIN), min_size=0, max_size=12))
def test_transitive_closure_agrees_on_random_graphs(database):
    from repro.datalog import parse_program

    program = parse_program(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        far(X) :- node(X), not reach(X, X).
        node(X) :- edge(X, Y).
        node(Y) :- edge(X, Y).
        """
    )
    edb = {"edge": set(database)}
    planned = SemiNaiveEngine(program).evaluate(edb)
    indexed = SemiNaiveEngine(program, use_plans=False).evaluate(edb)
    nested = SemiNaiveEngine(program, use_index=False).evaluate(edb)
    assert planned == indexed == nested

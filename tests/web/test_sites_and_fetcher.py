"""Tests for the simulated Web and the synthetic site generators."""

from __future__ import annotations

import pytest

from repro.html import parse_html
from repro.web import SimulatedWeb, StaticDocumentFetcher
from repro.web.sites.bookstore import bookstore_site
from repro.web.sites.ebay import ebay_page, ebay_site, perturb_layout
from repro.web.sites.flights import advance_statuses, departures_page, generate_flights
from repro.web.sites.markets import competitor_sites, power_trading_site, viticulture_page
from repro.web.sites.music import now_playing_site, retune_station, stations
from repro.web.sites.news import press_clipping_site


def test_simulated_web_publish_fetch_and_log():
    web = SimulatedWeb()
    web.publish("http://Example.test/page/", "<html><body><p>hi</p></body></html>")
    assert web.has("example.test/page")
    document = web.fetch("example.test/page")
    assert document.find_first("p").normalized_text() == "hi"
    assert web.fetch_log == ["example.test/page"]
    assert len(web) == 1
    with pytest.raises(KeyError):
        web.fetch("missing.test")


def test_simulated_web_update_and_lenient_matching():
    web = SimulatedWeb()
    web.publish("shop.test/list", "<body><p>v1</p></body>")
    web.update("shop.test/list", lambda html: html.replace("v1", "v2"))
    assert "v2" in web.fetch_html("shop.test/list")
    # prefix matching: a wrapper naming the site root still resolves
    assert web.has("shop.test")


def test_static_document_fetcher():
    document = parse_html("<body><p>x</p></body>", url="a.test")
    fetcher = StaticDocumentFetcher({"a.test": document})
    assert fetcher.fetch("http://a.test/") is document
    with pytest.raises(KeyError):
        fetcher.fetch("b.test")


def test_ebay_generator_is_deterministic_and_structured():
    assert ebay_page(count=5, seed=1) == ebay_page(count=5, seed=1)
    assert ebay_page(count=5, seed=1) != ebay_page(count=5, seed=2)
    document = parse_html(ebay_page(count=5, seed=1))
    listings = [t for t in document.find_all("table") if t.get_attribute("class") == "listing"]
    assert len(listings) == 5
    assert document.find_first("hr") is not None
    site = ebay_site(pages=3, items_per_page=4)
    assert len(site) == 3
    assert "page/2" in " ".join(site)


def test_perturb_layout_keeps_listings_intact():
    original = parse_html(ebay_page(count=6, seed=4))
    perturbed = parse_html(perturb_layout(ebay_page(count=6, seed=4), seed=9))
    def count(doc):
        return len(
            [t for t in doc.find_all("table") if t.get_attribute("class") == "listing"]
        )
    assert count(original) == count(perturbed) == 6
    assert len(perturbed) > len(original)


def test_bookstore_site_has_three_heterogeneous_shops():
    site = bookstore_site(count=5, seed=2)
    assert len(site) == 3
    table_doc = parse_html(site["books-a.test/bestsellers"])
    assert len(table_doc.find_all("tr")) == 6  # header + 5 books
    list_doc = parse_html(site["books-b.test/chart"])
    assert len(list_doc.find_all("li")) == 5
    div_doc = parse_html(site["books-c.test/picks"])
    entries = [d for d in div_doc.find_all("div") if d.get_attribute("class") == "entry"]
    assert len(entries) == 5


def test_music_site_covers_radio_charts_and_lyrics():
    site = now_playing_site(station_count=6, chart_count=5, seed=0)
    radio_urls = [url for url in site if "radio-" in url]
    chart_urls = [url for url in site if "charts-" in url]
    lyrics_urls = [url for url in site if "lyrics." in url]
    assert len(radio_urls) == 6 and len(chart_urls) == 5 and len(lyrics_urls) >= 8
    first = stations(1, seed=0)[0]
    retuned = retune_station(site[stations(6, seed=0)[0].url], "New Song", "New Artist")
    assert "New Song" in retuned and first.current_song not in retuned


def test_flight_generator_and_status_changes():
    flights = generate_flights(6, seed=3)
    page = departures_page("Vienna", flights)
    document = parse_html(page)
    assert len(document.find_all("tr")) == 7
    changed = advance_statuses(flights, {flights[0].number: "cancelled"})
    assert changed[0].status == "cancelled"
    assert flights[0].status != "cancelled"  # original unchanged


def test_news_markets_and_viticulture_generators():
    press = press_clipping_site(count=4, seed=1)
    assert len(press) == 3
    assert "quotes" in " ".join(press)
    competitors = competitor_sites(shops=3, count=5, seed=1)
    assert len(competitors) == 3
    power = power_trading_site(seed=1)
    assert {"exaa.test/spot", "weather.test/vienna"} <= set(power)
    advisory = parse_html(viticulture_page(seed=1))
    assert len(advisory.find_all("tr")) == 4


# ---------------------------------------------------------------------------
# Resolution determinism, typed fetch errors and failure logging
# ---------------------------------------------------------------------------


def test_lenient_resolution_picks_the_longest_match_deterministically():
    from repro.web.fetcher import _resolve_key

    web = SimulatedWeb()
    # Several pages share the "shop.test" prefix; a wrapper naming the
    # bare site must resolve to the *most specific* page, not whichever
    # dict order happens to visit first.
    web.publish("shop.test/a", "<body><p>a</p></body>")
    web.publish("shop.test/a/deep", "<body><p>deep</p></body>")
    web.publish("shop.test/b", "<body><p>b</p></body>")
    assert web.fetch_html("shop.test") == "<body><p>deep</p></body>"
    # An exact match always wins over any longer prefix sibling.
    assert web.fetch_html("shop.test/a") == "<body><p>a</p></body>"
    # Equal-length candidates break ties lexicographically (a pure
    # function of the published set, whatever the insertion order).
    assert _resolve_key("shop.test", {"shop.test/b": 1, "shop.test/a": 2}) == (
        "shop.test/b"
    )
    assert _resolve_key("shop.test", {"shop.test/a": 2, "shop.test/b": 1}) == (
        "shop.test/b"
    )


def test_missing_pages_raise_typed_fetch_errors():
    from repro.resilience import FetchError, PermanentFetchError

    web = SimulatedWeb()
    with pytest.raises(PermanentFetchError) as caught:
        web.fetch("gone.test/page")
    assert caught.value.url == "gone.test/page"
    assert isinstance(caught.value, FetchError)
    assert isinstance(caught.value, KeyError)  # the pre-resilience contract
    assert "no page published" in str(caught.value)

    static = StaticDocumentFetcher({})
    with pytest.raises(PermanentFetchError):
        static.fetch("gone.test")


def test_fetch_log_records_every_attempt_and_error_log_the_failures():
    web = SimulatedWeb()
    web.publish("a.test", "<body><p>hi</p></body>")
    web.fetch("a.test")
    web.fetch_html("a.test")  # fetch_html is an attempt too (was unlogged)
    with pytest.raises(KeyError):
        web.fetch("missing.test")
    assert web.fetch_log == ["a.test", "a.test", "missing.test"]
    assert len(web.error_log) == 1
    url, message = web.error_log[0]
    assert url == "missing.test" and "no page published" in message


def test_install_faults_adjudicates_fetches_through_the_plan():
    from repro.resilience import FaultPlan, TransientFetchError

    web = SimulatedWeb()
    web.publish("a.test", "<body><p>hi</p></body>")
    naps = []
    web.install_faults(
        FaultPlan().fail_transient("a.test", times=1).add_latency("a.test", 0.2),
        sleep=naps.append,
    )
    with pytest.raises(TransientFetchError):
        web.fetch("a.test")
    assert web.fetch("a.test").find_first("p").normalized_text() == "hi"
    assert naps == [0.2, 0.2]
    # Injected failures are logged like real ones.
    assert web.fetch_log == ["a.test", "a.test"]
    assert len(web.error_log) == 1
    web.install_faults(None)  # disarm
    web.fetch("a.test")
    assert len(web.error_log) == 1

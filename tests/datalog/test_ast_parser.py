"""Tests for the datalog AST and parser."""

from __future__ import annotations

import pytest

from repro.datalog import (
    Atom,
    DatalogSyntaxError,
    atom,
    fact,
    neg,
    parse_atom_text,
    parse_program,
    parse_rules,
    rule,
)
from repro.datalog.ast import Constant, Variable


def test_atom_helper_coerces_terms():
    a = atom("edge", "X", "y", 3)
    assert a.terms == (Variable("X"), Constant("y"), Constant(3))
    assert a.arity == 3
    assert a.variables() == {Variable("X")}


def test_atom_substitute_and_ground():
    a = atom("p", "X", "Y")
    grounded = a.substitute({Variable("X"): Constant(1), Variable("Y"): Constant(2)})
    assert grounded.is_ground()
    assert grounded.terms == (Constant(1), Constant(2))


def test_rule_str_and_fact():
    r = rule(atom("p", "X"), atom("q", "X"), neg(atom("r", "X")))
    assert str(r) == "p(X) :- q(X), not r(X)."
    f = fact("q", 1)
    assert f.is_fact()
    assert not r.is_fact()


def test_rule_safety():
    safe = rule(atom("p", "X"), atom("q", "X"))
    unsafe_head = rule(atom("p", "X", "Y"), atom("q", "X"))
    unsafe_negation = rule(atom("p", "X"), atom("q", "X"), neg(atom("r", "Y")))
    assert safe.is_safe()
    assert not unsafe_head.is_safe()
    assert not unsafe_negation.is_safe()


def test_program_predicates_and_size():
    program = parse_program(
        """
        p(X) :- e(X, Y), q(Y).
        q(X) :- base(X).
        """
    )
    assert program.idb_predicates() == {"p", "q"}
    assert program.edb_predicates == {"e", "base"}
    assert program.size() == 3 + 2
    assert program.is_monadic()


def test_program_is_monadic_detects_binary_idb():
    program = parse_program("path(X, Y) :- edge(X, Y).")
    assert not program.is_monadic()


def test_parse_example_2_1_program():
    rules = parse_rules(
        """
        % Example 2.1 of the paper
        Italic(X) :- label_i(X).
        Italic(X) :- Italic(X0), firstchild(X0, X).
        Italic(X) :- Italic(X0), nextsibling(X0, X).
        """
    )
    assert len(rules) == 3
    assert rules[0].head.predicate == "Italic"
    assert rules[1].body[1].atom.predicate == "firstchild"


def test_parse_arrow_and_not_and_strings():
    rules = parse_rules('ok(X) <- node(X), not bad(X), name(X, "eBay item").')
    assert rules[0].body[1].negated
    assert rules[0].body[2].atom.terms[1] == Constant("eBay item")


def test_parse_numbers():
    rules = parse_rules("dist(X, 3) :- near(X, 0.5).")
    assert rules[0].head.terms[1] == Constant(3)
    assert rules[0].body[0].atom.terms[1] == Constant(0.5)


def test_parse_facts_and_zero_arity():
    rules = parse_rules("start. edge(a, b).")
    assert rules[0].head.predicate == "start"
    assert rules[0].head.arity == 0
    assert rules[1].head.terms == (Constant("a"), Constant("b"))


def test_parse_atom_text():
    a = parse_atom_text("price(X)")
    assert a == Atom("price", (Variable("X"),))
    with pytest.raises(DatalogSyntaxError):
        parse_atom_text("price(X) extra")


def test_parse_errors():
    with pytest.raises(DatalogSyntaxError):
        parse_rules("p(X :- q(X).")
    with pytest.raises(DatalogSyntaxError):
        parse_rules("p(X) :- q(X)")  # missing dot
    with pytest.raises(DatalogSyntaxError):
        parse_rules("p($) .")


def test_program_rules_for_and_str():
    program = parse_program("p(X) :- q(X). p(X) :- r(X). s(X) :- p(X).")
    assert len(program.rules_for("p")) == 2
    assert "s(X) :- p(X)." in str(program)

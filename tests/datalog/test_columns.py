"""Unit tests for the columnar storage layer (repro/datalog/columns.py).

Covers the row-interning container contract, lazy posting/composite
materialisation with batch catch-up maintenance, both ``key_mode`` probe
strategies, delta windows as row-id range slices, the database surface
shared with :class:`~repro.datalog.index.IndexedDatabase`, and the
storage counters surfaced through ``engine_info()`` at both the engine
and the :class:`repro.api.Session` level.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.datalog import (
    ColumnarDatabase,
    ColumnarRelation,
    EngineOptions,
    SemiNaiveEngine,
    StorageStats,
    aggregate_engine_info,
    parse_program,
)

REACH = """
reach(Y) :- source(X), edge(X, Y).
reach(Y) :- reach(X), edge(X, Y).
"""


# ---------------------------------------------------------------------------
# ColumnarRelation: interning, container protocol, lazy indexes
# ---------------------------------------------------------------------------


def test_relation_interns_rows_in_insertion_order():
    relation = ColumnarRelation([(1, 2), (2, 3)])
    assert relation.add((3, 4)) is True
    assert relation.add((1, 2)) is False  # duplicate: interned once
    assert list(relation) == [(1, 2), (2, 3), (3, 4)]
    assert len(relation) == 3
    assert (2, 3) in relation
    assert (9, 9) not in relation
    assert bool(relation)
    assert not bool(ColumnarRelation())


def test_add_batch_counts_only_new_rows():
    relation = ColumnarRelation([(1, 2)])
    added = relation.add_batch([(1, 2), (2, 3), (2, 3), (3, 4)])
    assert added == 2
    assert len(relation) == 3


def test_postings_materialise_lazily_and_catch_up_after_appends():
    relation = ColumnarRelation([(1, 2), (2, 3), (1, 9)])
    assert relation.index_count() == 0  # nothing probed yet
    assert set(relation.probe1(0, 1)) == {(1, 2), (1, 9)}
    assert relation.index_count() == 1
    # Appends touch no index; the next probe folds the new rows in.
    relation.add((1, 7))
    assert set(relation.probe1(0, 1)) == {(1, 2), (1, 9), (1, 7)}
    assert relation.probe1(0, 42) == ()


def test_probe1_on_empty_relation_is_empty_and_materialises_nothing():
    relation = ColumnarRelation()
    assert relation.probe1(0, "x") == ()
    assert relation.index_count() == 0


def test_full_key_mode_probes_composite_index():
    relation = ColumnarRelation([(1, 2, 3), (1, 2, 4), (2, 2, 3)], key_mode="full")
    assert set(relation.probe((0, 1), (1, 2))) == {(1, 2, 3), (1, 2, 4)}
    relation.add((1, 2, 9))
    assert set(relation.probe((0, 1), (1, 2))) == {(1, 2, 3), (1, 2, 4), (1, 2, 9)}
    assert relation._stats.posting_intersections == 0


def test_prefix_key_mode_intersects_posting_sets():
    stats = StorageStats()
    relation = ColumnarRelation(
        [(1, 2, 3), (1, 2, 4), (2, 2, 3)], key_mode="prefix", stats=stats
    )
    assert set(relation.probe((0, 1), (1, 2))) == {(1, 2, 3), (1, 2, 4)}
    assert stats.posting_intersections == 1
    assert relation.probe((0, 1), (7, 2)) == ()
    # No-position probe returns the whole row array.
    assert list(relation.probe((), ())) == list(relation)


def test_probe_skips_rows_of_smaller_arity():
    relation = ColumnarRelation([(1,), (1, 2)])
    assert set(relation.probe1(1, 2)) == {(1, 2)}
    assert set(relation.probe1(0, 1)) == {(1,), (1, 2)}


def test_key_mode_is_validated():
    with pytest.raises(ValueError, match="key_mode"):
        ColumnarRelation(key_mode="bogus")
    with pytest.raises(ValueError, match="key_mode"):
        ColumnarDatabase(key_mode="bogus")


def test_ensure_index_materialises_the_advised_access_path():
    full = ColumnarRelation([(1, 2)], key_mode="full")
    full.ensure_index((0, 1))
    assert full.index_count() == 1  # one composite
    prefix = ColumnarRelation([(1, 2)], key_mode="prefix")
    prefix.ensure_index((0, 1))
    assert prefix.index_count() == 2  # two posting columns


# ---------------------------------------------------------------------------
# ColumnarWindow: row-id range deltas
# ---------------------------------------------------------------------------


def test_window_is_a_range_slice_over_the_row_array():
    database = ColumnarDatabase({"e": set()})
    relation = database.relation("e")
    for fact in [(1, 2), (2, 3), (3, 4), (4, 5)]:
        relation.add(fact)
    window = database.window("e", 1, 3)
    assert len(window) == 2
    assert list(window) == [(2, 3), (3, 4)]
    assert bool(window)
    assert window.probe1(0, 3) == [(3, 4)]
    assert window.probe1(0, 1) == []  # row 0 is outside the window
    assert window.probe((0, 1), (2, 3)) == [(2, 3)]
    assert list(window.probe((), ())) == [(2, 3), (3, 4)]


def test_window_lookup_answers_only_its_own_predicate():
    database = ColumnarDatabase({"e": {(1, 2)}})
    window = database.window("e", 0, 1)
    assert window.lookup("e") is window
    other = window.lookup("f")
    assert len(other) == 0
    window.lo, window.hi = 0, 0
    assert not bool(window)


# ---------------------------------------------------------------------------
# ColumnarDatabase: storage-protocol surface
# ---------------------------------------------------------------------------


def test_database_surface_matches_the_tuple_layer():
    database = ColumnarDatabase({"e": {(1, 2), (2, 3)}})
    assert database.size("e") == 2
    assert database.size("missing") == 0
    assert database.contains_fact("e", (1, 2))
    assert not database.contains_fact("e", (9, 9))
    assert "e" in database
    assert "missing" not in database
    assert database.facts_of("e") == {(1, 2), (2, 3)}
    assert database.facts_of("missing") == set()
    assert database.add_fact("d", ("x",)) is True
    assert database.add_batch("d", [("x",), ("y",)]) == 1
    database.load({"f": [(7,)], "g": []})
    assert database.row_count("f") == 1
    assert "g" not in database  # empty load batches create nothing
    assert bool(database)
    database.clear()
    assert not bool(database)


def test_lookup_miss_returns_shared_empty_without_creating_an_entry():
    database = ColumnarDatabase()
    missing = database.lookup("nope")
    assert len(missing) == 0
    assert "nope" not in database
    # The shared sentinel stays immutable even after probes.
    assert missing.probe1(0, 1) == ()
    assert missing.index_count() == 0


def test_to_database_snapshots_plain_sets():
    database = ColumnarDatabase({"e": {(1, 2)}})
    database.add_fact("p", (1,))
    snapshot = database.to_database()
    assert snapshot == {"e": {(1, 2)}, "p": {(1,)}}
    snapshot["e"].add((9, 9))
    assert not database.contains_fact("e", (9, 9))  # snapshot is a copy


def test_prune_empty_drops_only_still_empty_scratch_relations():
    database = ColumnarDatabase({"e": {(1, 2)}})
    database.relation("scratch")
    database.relation("kept").add((1,))
    database.prune_empty(["scratch", "kept", "never-created"])
    assert "scratch" not in database
    assert "kept" in database
    assert "e" in database


def test_shared_stats_count_interned_rows_across_relations():
    stats = StorageStats()
    database = ColumnarDatabase({"e": {(1, 2), (2, 3)}}, stats=stats)
    database.add_fact("p", (1,))
    database.add_fact("p", (1,))  # duplicate: not interned again
    assert stats.rows_interned == 3


# ---------------------------------------------------------------------------
# engine_info(): storage counters through the engine and the Session
# ---------------------------------------------------------------------------


def test_engine_info_counts_columnar_activity():
    program = parse_program(REACH)
    engine = SemiNaiveEngine(program)
    result = engine.evaluate({"edge": {(i, i + 1) for i in range(50)}, "source": {(0,)}})
    info = engine.engine_info()
    assert info.storage == "columnar"
    assert info.index_keys == "full"
    assert info.rows_interned >= 50 + len(result["reach"])
    assert info.delta_batches >= 49
    assert info.delta_rows >= 50
    assert info.max_delta_batch >= 1
    assert info.closure_compiles >= 1


def test_engine_info_is_quiet_under_tuple_storage():
    program = parse_program(REACH)
    engine = SemiNaiveEngine(program, options=EngineOptions(storage="tuple"))
    engine.evaluate({"edge": {(1, 2)}, "source": {(1,)}})
    info = engine.engine_info()
    assert info.storage == "tuple"
    assert info.rows_interned == 0
    assert info.delta_batches == 0
    assert info.closure_compiles >= 1  # executors compile either way


def test_columnar_falls_back_to_tuple_storage_without_plans():
    options = EngineOptions(storage="columnar", use_plans=False)
    assert options.effective_storage == "tuple"
    engine = SemiNaiveEngine(parse_program(REACH), options=options)
    assert engine.storage == "tuple"


def test_session_engine_info_aggregates_across_evaluators():
    session = Session()
    baseline = session.engine_info()
    assert baseline.storage == "columnar"
    assert baseline.rows_interned == 0
    session.query(REACH, {"edge": {(1, 2), (2, 3)}, "source": {(1,)}}, backend="semi-naive")
    info = session.engine_info()
    assert info.storage == "columnar"
    assert info.rows_interned > 0
    assert info.delta_batches >= 1
    assert info.closure_compiles >= 1


def test_session_engine_info_reports_the_configured_storage():
    session = Session(options=EngineOptions(storage="tuple"))
    session.query(REACH, {"edge": {(1, 2)}, "source": {(1,)}}, backend="semi-naive")
    info = session.engine_info()
    assert info.storage == "tuple"
    assert info.rows_interned == 0


def test_aggregate_engine_info_sums_counters_and_maxes_batches():
    program = parse_program(REACH)
    first = SemiNaiveEngine(program)
    second = SemiNaiveEngine(program)
    first.evaluate({"edge": {(1, 2)}, "source": {(1,)}})
    second.evaluate({"edge": {(i, i + 1) for i in range(10)}, "source": {(0,)}})
    infos = [first.engine_info(), second.engine_info()]
    merged = aggregate_engine_info("columnar", "full", infos)
    assert merged.rows_interned == sum(i.rows_interned for i in infos)
    assert merged.delta_batches == sum(i.delta_batches for i in infos)
    assert merged.max_delta_batch == max(i.max_delta_batch for i in infos)

"""Tests for the fixpoint LRU (repro/datalog/cache.py) and its engine wiring."""

from __future__ import annotations

import pytest

from repro.datalog import (
    FixpointCache,
    LruMap,
    SemiNaiveEngine,
    database_content_hash,
    parse_program,
)


def _counting_engine(text="p(X) :- q(X).", cache_size=8):
    engine = SemiNaiveEngine(parse_program(text), cache_size=cache_size)
    calls = []
    original = engine.evaluate
    engine.evaluate = lambda db: calls.append(1) or original(db)
    return engine, calls


# ---------------------------------------------------------------------------
# FixpointCache unit behaviour
# ---------------------------------------------------------------------------


def test_lru_eviction_order():
    cache = FixpointCache(capacity=2)
    databases = [{"q": {(i,)}} for i in range(3)]
    for index, database in enumerate(databases):
        fingerprint, result = cache.lookup(database)
        assert result is None
        cache.store(fingerprint, database, f"result-{index}")
    # Capacity 2: database 0 (least recently used) was evicted.
    assert cache.lookup(databases[0])[1] is None
    assert cache.lookup(databases[1])[1] == "result-1"
    assert cache.lookup(databases[2])[1] == "result-2"


def test_lru_hit_refreshes_recency():
    cache = FixpointCache(capacity=2)
    a, b, c = {"q": {(1,)}}, {"q": {(2,)}}, {"q": {(3,)}}
    for name, database in (("a", a), ("b", b)):
        fingerprint, _ = cache.lookup(database)
        cache.store(fingerprint, database, name)
    assert cache.lookup(a)[1] == "a"  # touch a: b becomes the LRU entry
    fingerprint, _ = cache.lookup(c)
    cache.store(fingerprint, c, "c")
    assert cache.lookup(b)[1] is None  # b evicted, not a
    assert cache.lookup(a)[1] == "a"


def test_exact_invalidation_on_in_place_fact_swap():
    cache = FixpointCache(capacity=2)
    database = {"q": {(1,), (2,)}}
    fingerprint, _ = cache.lookup(database)
    cache.store(fingerprint, database, "first")
    # Swapping one fact for another keeps sizes identical but must miss.
    database["q"].discard((2,))
    database["q"].add((3,))
    assert cache.lookup(database)[1] is None


def test_hit_across_equal_but_distinct_databases():
    cache = FixpointCache(capacity=2)
    original = {"q": {(1,), (2,)}, "r": set()}
    fingerprint, _ = cache.lookup(original)
    cache.store(fingerprint, original, "shared")
    rebuild = {"q": {(2,), (1,)}, "r": set()}
    assert rebuild is not original
    assert cache.lookup(rebuild)[1] == "shared"
    # An extra empty relation changes the fixpoint shape: must miss.
    assert cache.lookup({"q": {(1,), (2,)}, "r": set(), "s": set()})[1] is None


def test_store_refreshes_exact_duplicates_instead_of_inflating():
    cache = FixpointCache(capacity=2)
    database = {"q": {(1,)}}
    fingerprint, _ = cache.lookup(database)
    cache.store(fingerprint, database, "first")
    cache.store(fingerprint, database, "second")
    assert len(cache) == 1  # refreshed in place, not appended
    assert cache.lookup(database)[1] == "second"

    other = {"q": {(2,)}}
    other_fingerprint, _ = cache.lookup(other)
    cache.store(other_fingerprint, other, "other")
    # Repeated stores of one hot document must not evict the other one.
    for _ in range(5):
        cache.store(fingerprint, database, "again")
    assert len(cache) == 2
    assert cache.lookup(other)[1] == "other"
    assert cache.lookup(database)[1] == "again"


def test_store_dedup_is_exact_not_fingerprint_based():
    # Hash-equal but different databases still get their own entries.
    collider = 2**61
    assert hash((1,)) == hash((collider,))
    cache = FixpointCache(capacity=4)
    a = {"q": {(1,)}}
    b = {"q": {(collider,)}}
    fingerprint_a, _ = cache.lookup(a)
    fingerprint_b, _ = cache.lookup(b)
    assert fingerprint_a == fingerprint_b
    cache.store(fingerprint_a, a, "a")
    cache.store(fingerprint_b, b, "b")
    assert len(cache) == 2
    assert cache.lookup(a)[1] == "a" and cache.lookup(b)[1] == "b"


def test_content_hash_is_order_independent_and_shape_sensitive():
    a = {"q": {(1,), (2,), (3,)}, "r": {(4,)}}
    b = {"r": {(4,)}, "q": {(3,), (2,), (1,)}}
    assert database_content_hash(a) == database_content_hash(b)
    assert database_content_hash(a) != database_content_hash({"q": {(1,), (2,)}})
    assert database_content_hash({"q": set()}) != database_content_hash({})


def test_cache_info_counters():
    cache = FixpointCache(capacity=4)
    database = {"q": {(1,)}}
    fingerprint, _ = cache.lookup(database)  # miss
    cache.store(fingerprint, database, "x")
    cache.lookup(database)  # hit
    cache.lookup({"q": {(2,)}})  # miss
    info = cache.info()
    assert (info.hits, info.misses, info.size, info.capacity) == (1, 2, 1, 4)
    assert info.hit_rate == pytest.approx(1 / 3)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FixpointCache(capacity=0)
    with pytest.raises(ValueError):
        LruMap(capacity=0)


def test_lru_map_basics():
    lru = LruMap(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes a
    lru.put("c", 3)
    assert lru.get("b") is None  # b was the LRU entry
    assert lru.get("a") == 1 and lru.get("c") == 3
    info = lru.info()
    assert info.size == 2 and info.capacity == 2


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------


def test_engine_serves_working_set_without_thrashing():
    # The PR-1 single-slot cache thrashed on alternating documents; the LRU
    # must evaluate each database of a small working set exactly once.
    engine, calls = _counting_engine(cache_size=4)
    working_set = [{"q": {(i,)}} for i in range(4)]
    for _ in range(5):
        for database in working_set:
            engine.query(database, "p")
    assert len(calls) == 4
    info = engine.fixpoint_cache_info()
    assert info.hits == 16 and info.misses == 4
    assert info.hit_rate >= 0.8


def test_engine_cache_capacity_evicts_lru():
    engine, calls = _counting_engine(cache_size=2)
    a, b, c = {"q": {(1,)}}, {"q": {(2,)}}, {"q": {(3,)}}
    engine.query(a, "p")
    engine.query(b, "p")
    engine.query(c, "p")  # evicts a
    engine.query(a, "p")  # re-evaluates
    assert len(calls) == 4
    engine.query(c, "p")  # still resident
    assert len(calls) == 4


def test_engine_observes_in_place_mutation_of_same_object():
    engine, calls = _counting_engine()
    database = {"q": {(1,), (2,)}}
    assert engine.query(database, "p") == {(1,), (2,)}
    assert engine.query(database, "p") == {(1,), (2,)}
    assert len(calls) == 1
    # In-place swap through the SAME object must invalidate.
    database["q"].discard((1,))
    database["q"].add((7,))
    assert engine.query(database, "p") == {(2,), (7,)}
    assert len(calls) == 2


def test_engine_observes_hash_colliding_in_place_mutation():
    # CPython hashes collide easily: hash(1) == hash(2**61).  Swapping a
    # fact for a hash-equal one keeps the cheap content hash unchanged, so
    # only the exact snapshot verification can (and must) catch it.
    collider = 2**61
    assert hash((1,)) == hash((collider,))
    engine, calls = _counting_engine()
    database = {"q": {(1,)}}
    assert engine.query(database, "p") == {(1,)}
    database["q"].discard((1,))
    database["q"].add((collider,))
    assert engine.query(database, "p") == {(collider,)}
    assert len(calls) == 2


def test_engine_clear_fixpoint_cache():
    engine, calls = _counting_engine()
    database = {"q": {(1,)}}
    engine.query(database, "p")
    engine.clear_fixpoint_cache()
    engine.query(database, "p")
    assert len(calls) == 2
    assert engine.fixpoint_cache_info().misses == 1  # counters reset too

"""Tests for the shared compiled-program registry (repro/datalog/registry.py)."""

from __future__ import annotations

import pytest

from repro.datalog import (
    PlanRegistry,
    SemiNaiveEngine,
    clear_plan_registry,
    parse_program,
    plan_registry_info,
    program_fingerprint,
    shared_registry,
)

BUILTINS = SemiNaiveEngine.BUILTINS

REACH = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_fingerprint_is_rule_order_independent():
    a = parse_program("p(X) :- e(X). q(X) :- f(X).")
    b = parse_program("q(X) :- f(X). p(X) :- e(X).")
    assert program_fingerprint(a) == program_fingerprint(b)


def test_fingerprint_is_content_sensitive():
    a = parse_program("p(X) :- e(X).")
    b = parse_program("p(X) :- f(X).")
    assert program_fingerprint(a) != program_fingerprint(b)
    # The EDB split is part of the identity too.
    c = parse_program("p(X) :- e(X).")
    c.edb_predicates = frozenset(c.edb_predicates | {"extra"})
    assert program_fingerprint(a) != program_fingerprint(c)


# ---------------------------------------------------------------------------
# Registry sharing
# ---------------------------------------------------------------------------


def test_engines_over_equal_programs_share_plan_objects():
    clear_plan_registry()
    first = SemiNaiveEngine(parse_program(REACH))
    second = SemiNaiveEngine(parse_program(REACH))
    for plans_a, plans_b in zip(first._stratum_plans, second._stratum_plans):
        for plan_a, plan_b in zip(plans_a, plans_b):
            assert plan_a is plan_b
    info = plan_registry_info()
    assert info.misses == 1 and info.hits == 1 and info.size == 1


def test_share_plans_false_compiles_privately():
    clear_plan_registry()
    shared = SemiNaiveEngine(parse_program(REACH))
    private = SemiNaiveEngine(parse_program(REACH), share_plans=False)
    assert not private.share_plans
    assert shared._stratum_plans[0][0] is not private._stratum_plans[0][0]
    info = plan_registry_info()
    assert info.misses == 1 and info.hits == 0  # the private engine never asked


def test_shared_and_private_engines_compute_equal_fixpoints():
    database = {"edge": {(1, 2), (2, 3), (3, 4), (7, 8)}}
    shared = SemiNaiveEngine(parse_program(REACH)).evaluate(database)
    private = SemiNaiveEngine(parse_program(REACH), share_plans=False).evaluate(database)
    assert shared == private
    assert shared["reach"] == {
        (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (7, 8),
    }


def test_join_order_memos_stay_instance_local():
    clear_plan_registry()
    big = SemiNaiveEngine(parse_program(REACH))
    small = SemiNaiveEngine(parse_program(REACH))
    big.evaluate({"edge": {(i, i + 1) for i in range(64)}})
    # Sharing one plan must not leak the big engine's bucket history into
    # the idle engine, and the shared plan's own default memo stays empty.
    assert any(count > 0 for count in big.plan_memo_counts())
    assert all(count == 0 for count in small.plan_memo_counts())
    assert all(plan.plan_count() == 0 for plan in big._stratum_plans[0])
    small.evaluate({"edge": {(1, 2)}})
    assert any(count > 0 for count in small.plan_memo_counts())


def test_hash_collisions_are_verified_exactly():
    registry = PlanRegistry(capacity=4)
    a = parse_program("p(X) :- e(X).")
    b = parse_program("p(X) :- f(X).")
    compiled_a = registry.compiled(a, BUILTINS)
    compiled_b = registry.compiled(b, BUILTINS)
    assert compiled_a is not compiled_b
    # Equal content always reuses, whatever the hash did.
    assert registry.compiled(parse_program("p(X) :- e(X)."), BUILTINS) is compiled_a


def test_registry_lru_eviction_and_info():
    registry = PlanRegistry(capacity=2)
    programs = [parse_program(f"p(X) :- e{i}(X).") for i in range(3)]
    compiled = [registry.compiled(program, BUILTINS) for program in programs]
    assert len(registry) == 2
    # Program 0 was evicted: a fresh compile, not the old object.
    assert registry.compiled(parse_program("p(X) :- e0(X)."), BUILTINS) is not compiled[0]
    info = registry.info()
    assert info.misses == 4 and info.capacity == 2
    registry.clear()
    assert len(registry) == 0 and registry.info().misses == 0


def test_registry_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanRegistry(capacity=0)


def test_duplicate_and_reordered_rules_share_one_compilation():
    # Rule order and duplication are fixpoint-preserving, so programs
    # differing only in those share a compilation (after exact snapshot
    # verification); the fixpoints agree by construction.
    registry = PlanRegistry(capacity=4)
    a = parse_program("p(X) :- e(X). q(X) :- p(X).")
    b = parse_program("q(X) :- p(X). p(X) :- e(X).")
    assert registry.compiled(a, BUILTINS) is registry.compiled(b, BUILTINS)
    database = {"e": {(1,), (2,)}}
    assert (
        SemiNaiveEngine(a).evaluate(database)
        == SemiNaiveEngine(b).evaluate(database)
        == SemiNaiveEngine(a, share_plans=False).evaluate(database)
    )


# ---------------------------------------------------------------------------
# Server-scale acceptance: 200 components, 4 programs, 4 compilations
# ---------------------------------------------------------------------------


def test_200_components_over_4_programs_compile_4_times():
    from repro.mdatalog import MonadicProgram
    from repro.server import DatalogQueryComponent
    from repro.tree.builder import tree

    clear_plan_registry()
    programs = [
        MonadicProgram.parse(
            f"hit{i}(X) :- label_b(X).\nhit{i}(Y) :- hit{i}(X), firstchild(X, Y).",
            query_predicates=[f"hit{i}"],
        )
        for i in range(4)
    ]
    document = tree(("doc", ("b", ("a",)), ("a",)))
    components = [
        DatalogQueryComponent(
            f"component-{n}",
            programs[n % 4],
            lambda: document,
            force_generic=True,  # the generic engine is the registry client
        )
        for n in range(200)
    ]
    info = plan_registry_info()
    assert info.misses == 4, f"expected 4 compilations, saw {info.misses}"
    assert info.hits == 196
    assert info.size >= 4
    # All 200 components still answer correctly and identically per program.
    outputs = [component.process([]) for component in components]
    for n, output in enumerate(outputs):
        assert output.children == outputs[n % 4].children
    assert [record.name for record in outputs[0].children] == ["hit0", "hit0"]


def test_shared_registry_is_a_singleton_view():
    clear_plan_registry()
    SemiNaiveEngine(parse_program(REACH))
    assert shared_registry().info() == plan_registry_info()
    assert plan_registry_info().misses == 1

"""Concurrency and eviction-fairness guarantees of the cache layer.

PR 5 makes every session-scale cache in :mod:`repro.datalog.cache` safe to
share across server request threads (internal locking, consistent counters,
single-flight builds) and fixes the per-bucket LRU unfairness of
:class:`VerifiedLruBuckets` (recency and eviction are now per *entry*, so a
hash-colliding hot entry can neither be evicted because of a cold
bucket-mate nor keep one alive).

The thread tests are deliberately structured so a regression deadlocks or
mis-counts rather than passing by luck; CI runs this file under
``pytest-timeout`` so a hang fails fast.
"""

from __future__ import annotations

import threading
from typing import Callable, List

import pytest

from repro.datalog.cache import (
    FixpointCache,
    LruMap,
    SingleFlight,
    VerifiedLruBuckets,
)

THREADS = 8
ROUNDS = 400


def run_threads(count: int, work: Callable[[int], None]) -> None:
    """Run ``work(i)`` on ``count`` threads, gate-started, join with timeout."""
    errors: List[BaseException] = []
    barrier = threading.Barrier(count)

    def runner(index: int) -> None:
        try:
            barrier.wait(timeout=10)
            work(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=runner, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "worker thread hung"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Per-entry LRU fairness (regression: per-bucket recency/eviction)
# ---------------------------------------------------------------------------


def test_hot_entry_survives_fingerprint_collision_eviction():
    """A hot entry must not be evicted because its cold bucket-mate is old.

    The pre-PR-5 buckets refreshed recency for the whole fingerprint bucket
    and evicted the front of the *oldest bucket* — in this scenario that
    evicted the repeatedly-touched entry ``a`` instead of the never-touched
    ``b``.
    """
    buckets: VerifiedLruBuckets[object] = VerifiedLruBuckets(2)
    a, b, c = object(), object(), object()
    buckets.insert(7, a)
    buckets.insert(7, b)  # same fingerprint: forced hash collision
    assert buckets.find(7, lambda entry: entry is a) is a  # a is now hot
    buckets.insert(9, c)  # over capacity: must evict the LRU entry (b)
    assert len(buckets) == 2
    assert buckets.find(7, lambda entry: entry is a) is a
    assert buckets.find(7, lambda entry: entry is b) is None
    assert buckets.find(9, lambda entry: entry is c) is c


def test_cold_entry_is_not_kept_alive_by_hot_bucket_mate():
    """The reverse unfairness: a cold entry must age out even when it shares
    a bucket with a hot one."""
    buckets: VerifiedLruBuckets[object] = VerifiedLruBuckets(2)
    cold, hot, fresh = object(), object(), object()
    buckets.insert(3, cold)
    buckets.insert(3, hot)
    for _ in range(5):
        assert buckets.find(3, lambda entry: entry is hot) is hot
    buckets.insert(4, fresh)
    assert buckets.find(3, lambda entry: entry is cold) is None
    assert buckets.find(3, lambda entry: entry is hot) is hot
    assert buckets.find(4, lambda entry: entry is fresh) is fresh


def test_eviction_is_globally_least_recently_used_across_buckets():
    buckets: VerifiedLruBuckets[str] = VerifiedLruBuckets(3)
    buckets.insert(1, "one")
    buckets.insert(2, "two")
    buckets.insert(3, "three")
    assert buckets.find(1, lambda entry: entry == "one") == "one"  # refresh 1
    buckets.insert(4, "four")  # evicts 2, the global LRU
    assert buckets.find(2, lambda entry: entry == "two") is None
    assert buckets.find(1, lambda entry: entry == "one") == "one"
    assert buckets.find(3, lambda entry: entry == "three") == "three"


# ---------------------------------------------------------------------------
# Lock correctness under thread stress
# ---------------------------------------------------------------------------


def test_lru_map_counters_and_size_stay_consistent_under_threads():
    lru: LruMap[int, int] = LruMap(16)
    for key in range(16):
        lru.put(key, key)

    def work(index: int) -> None:
        for round_ in range(ROUNDS):
            key = (index * ROUNDS + round_) % 48
            value = lru.get(key)
            if value is None:
                lru.put(key, key)
            else:
                assert value == key

    run_threads(THREADS, work)
    info = lru.info()
    # Exactly one hit-or-miss increment per get(): no lost updates.
    assert info.hits + info.misses == THREADS * ROUNDS
    assert info.size == len(lru) <= lru.capacity


def test_lru_map_concurrent_eviction_never_corrupts_structure():
    lru: LruMap[int, int] = LruMap(4)

    def work(index: int) -> None:
        for round_ in range(ROUNDS):
            lru.put((index, round_), round_)
            lru.get((index, round_ - 1))

    run_threads(THREADS, work)
    assert len(lru) <= 4
    # The structure is still a functional LRU afterwards.
    lru.put(("probe",), 42)
    assert lru.get(("probe",)) == 42


def test_fixpoint_cache_counts_every_lookup_under_threads():
    cache: FixpointCache[str] = FixpointCache(4)
    databases = [{"edge": {(i, i + 1), (i, i + 2)}} for i in range(6)]

    def work(index: int) -> None:
        for round_ in range(ROUNDS // 4):
            database = databases[(index + round_) % len(databases)]
            fingerprint, result = cache.lookup(database)
            if result is None:
                cache.store(fingerprint, database, f"result-{sorted(database['edge'])}")

    run_threads(THREADS, work)
    info = cache.info()
    assert info.hits + info.misses == THREADS * (ROUNDS // 4)
    assert info.size == len(cache) <= cache.capacity
    # Verified hits: every cached result still matches its database exactly.
    for database in databases:
        _, result = cache.lookup(database)
        if result is not None:
            assert result == f"result-{sorted(database['edge'])}"


def test_verified_buckets_concurrent_insert_find_keeps_len_within_capacity():
    buckets: VerifiedLruBuckets[int] = VerifiedLruBuckets(8)

    def work(index: int) -> None:
        for round_ in range(ROUNDS):
            fingerprint = round_ % 5  # force constant collisions
            marker = index * ROUNDS + round_
            buckets.insert(fingerprint, marker)
            buckets.find(fingerprint, lambda entry: entry == marker)

    run_threads(THREADS, work)
    assert len(buckets) == 8


# ---------------------------------------------------------------------------
# Single-flight builds
# ---------------------------------------------------------------------------


def test_single_flight_builds_exactly_once_per_key():
    flight = SingleFlight()
    memo: LruMap[str, object] = LruMap(8)
    builds = []
    gate = threading.Event()

    def build() -> object:
        builds.append(threading.get_ident())
        gate.wait(timeout=10)  # hold every waiter on the in-flight build
        return object()

    results = []
    lock = threading.Lock()

    def work(index: int) -> None:
        if index == THREADS - 1:
            # Last thread through releases the builder once everyone queued.
            gate.set()
        value = flight.run(
            "key", lambda: memo.get("key"), build, lambda v: memo.put("key", v)
        )
        with lock:
            results.append(value)

    run_threads(THREADS, work)
    assert len(builds) == 1, "concurrent misses must share one build"
    assert len(set(map(id, results))) == 1, "every caller got the one instance"
    assert memo.get("key") is results[0]


def test_single_flight_failed_build_wakes_waiters_and_allows_retry():
    flight = SingleFlight()
    memo: LruMap[str, object] = LruMap(8)
    attempts = []

    def build() -> object:
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("first build fails")
        return "built"

    outcomes = []
    lock = threading.Lock()

    def work(index: int) -> None:
        try:
            value = flight.run(
                "key", lambda: memo.get("key"), build, lambda v: memo.put("key", v)
            )
        except RuntimeError as error:
            with lock:
                outcomes.append(error)
        else:
            with lock:
                outcomes.append(value)

    run_threads(4, work)
    assert len(outcomes) == 4
    assert any(outcome == "built" for outcome in outcomes)
    # The key is not wedged: a later caller gets the memoised value.
    assert (
        flight.run("key", lambda: memo.get("key"), build, lambda v: memo.put("key", v))
        == "built"
    )


def test_single_flight_failed_store_does_not_wedge_the_key():
    """A store() exception must release the key and wake waiters — the
    'an exception never wedges a key' guarantee covers the whole
    build-then-store sequence, not just build()."""
    flight = SingleFlight()
    memo: LruMap[str, str] = LruMap(8)
    stores = []

    def failing_store(value: str) -> None:
        stores.append(value)
        if len(stores) == 1:
            raise RuntimeError("store fails once")
        memo.put("key", value)

    with pytest.raises(RuntimeError):
        flight.run("key", lambda: memo.get("key"), lambda: "built", failing_store)
    # The key is free again: the next caller builds and stores normally.
    assert (
        flight.run("key", lambda: memo.get("key"), lambda: "built", failing_store)
        == "built"
    )
    assert memo.get("key") == "built"


def test_cache_capacity_validation_still_raises():
    with pytest.raises(ValueError):
        LruMap(0)
    with pytest.raises(ValueError):
        VerifiedLruBuckets(0)

"""Tests for the semi-naive engine, stratification and LTUR solver."""

from __future__ import annotations

import pytest

from repro.datalog import (
    GroundHornSolver,
    SemiNaiveEngine,
    StratificationError,
    is_stratifiable,
    parse_program,
    query_program,
    solve_ground_program,
    stratify,
)
from repro.datalog.engine import EvaluationError


def test_transitive_closure():
    program = parse_program(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """
    )
    database = {"edge": {(1, 2), (2, 3), (3, 4), (5, 6)}}
    reach = query_program(program, database, "reach")
    assert (1, 4) in reach
    assert (1, 3) in reach
    assert (5, 6) in reach
    assert (4, 1) not in reach
    assert len(reach) == 7


def test_same_generation():
    program = parse_program(
        """
        sg(X, Y) :- sibling(X, Y).
        sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
        """
    )
    database = {
        "sibling": {("a", "b")},
        "parent": {("c", "a"), ("d", "b"), ("e", "c"), ("f", "d")},
    }
    sg = query_program(program, database, "sg")
    assert ("c", "d") in sg
    assert ("e", "f") in sg
    assert ("a", "d") not in sg


def test_stratified_negation():
    program = parse_program(
        """
        reachable(X) :- source(X).
        reachable(Y) :- reachable(X), edge(X, Y).
        unreachable(X) :- node(X), not reachable(X).
        """
    )
    database = {
        "source": {(1,)},
        "edge": {(1, 2), (2, 3)},
        "node": {(1,), (2,), (3,), (4,)},
    }
    result = SemiNaiveEngine(program).evaluate(database)
    assert result["unreachable"] == {(4,)}
    assert result["reachable"] == {(1,), (2,), (3,)}


def test_unstratifiable_program_rejected():
    program = parse_program(
        """
        p(X) :- node(X), not q(X).
        q(X) :- node(X), not p(X).
        """
    )
    assert not is_stratifiable(program)
    with pytest.raises(StratificationError):
        SemiNaiveEngine(program)


def test_stratify_orders_negation_below():
    program = parse_program(
        """
        a(X) :- base(X).
        b(X) :- node(X), not a(X).
        c(X) :- b(X).
        """
    )
    strata = stratify(program)
    flat = [[rule.head.predicate for rule in stratum] for stratum in strata]
    assert flat[0] == ["a"]
    assert "b" in flat[1]


def test_builtin_comparisons_filter():
    program = parse_program("cheap(X) :- item(X, P), lt(P, 10).")
    database = {"item": {("a", 5), ("b", 20), ("c", 9)}}
    result = query_program(program, database, "cheap")
    assert result == {("a",), ("c",)}


def test_negated_builtin():
    program = parse_program("other(X) :- item(X, P), not lt(P, 10).")
    database = {"item": {("a", 5), ("b", 20)}}
    assert query_program(program, database, "other") == {("b",)}


def test_unsafe_rule_rejected_at_construction():
    program = parse_program("p(X, Y) :- q(X).")
    with pytest.raises(ValueError):
        SemiNaiveEngine(program)


def test_builtin_wrong_arity_rejected_at_construction():
    # The seed engine silently filtered these substitutions away; wrong-arity
    # builtins must fail loudly instead of masking user errors.
    for text in ("p(X) :- q(X), lt(X).", "p(X) :- q(X), lt(X, X, X)."):
        with pytest.raises(EvaluationError):
            SemiNaiveEngine(parse_program(text))


def test_negated_builtin_wrong_arity_rejected_at_construction():
    with pytest.raises(EvaluationError):
        SemiNaiveEngine(parse_program("p(X) :- q(X), not lt(X)."))


def test_query_caches_fixpoint_per_database_content():
    program = parse_program("p(X) :- q(X).")
    engine = SemiNaiveEngine(program)
    database = {"q": {(1,)}}
    calls = []
    original = engine.evaluate
    engine.evaluate = lambda db: calls.append(1) or original(db)
    assert engine.query(database, "p") == {(1,)}
    assert engine.query(database, "p") == {(1,)}
    assert engine.query(database, "q") == {(1,)}
    assert len(calls) == 1  # one evaluation serves repeated queries
    # Mutating the database (fact counts change) invalidates the cache.
    database["q"].add((2,))
    assert engine.query(database, "p") == {(1,), (2,)}
    assert len(calls) == 2
    # Swapping one fact for another keeps the size but must also invalidate.
    database["q"].discard((2,))
    database["q"].add((3,))
    assert engine.query(database, "p") == {(1,), (3,)}
    assert len(calls) == 3
    # A database with different content is evaluated afresh...
    assert engine.query({"q": {(5,)}}, "p") == {(5,)}
    assert len(calls) == 4
    # ...but an equal-content rebuild hits the cache (content-keyed).
    assert engine.query({"q": {(5,)}}, "p") == {(5,)}
    assert len(calls) == 4


def test_fixpoint_result_is_immutable_view():
    program = parse_program("p(X) :- q(X).")
    engine = SemiNaiveEngine(program)
    database = {"q": {(1,)}}
    # query() returns an immutable frozenset view (no per-call copy); callers
    # that want a mutable extension must take an explicit set() copy.
    first = engine.query(database, "p")
    assert isinstance(first, frozenset)
    with pytest.raises(AttributeError):
        first.add((99,))
    mutable = set(first)
    mutable.add((99,))
    assert engine.query(database, "p") == {(1,)}
    result = engine.fixpoint(database)
    # Repeated queries share the same view object instead of copying.
    assert result.query("p") is result.query("p")
    assert result.query("missing") == frozenset()
    # facts() still hands out a fresh mutation-safe snapshot.
    snapshot = result.facts()
    snapshot["p"].add((99,))
    assert result.query("p") == {(1,)}
    assert "p" in result and result.predicates() >= {"p", "q"}


def test_constants_in_rules():
    program = parse_program('special(X) :- labelled(X, "gold").')
    database = {"labelled": {(1, "gold"), (2, "silver")}}
    assert query_program(program, database, "special") == {(1,)}


def test_empty_relation_yields_empty_result():
    program = parse_program("p(X) :- q(X), r(X).")
    database = {"q": {(1,)}, "r": set()}
    assert query_program(program, database, "p") == set()


def test_ltur_solver_basic_propagation():
    solver = GroundHornSolver()
    solver.add_rule("c", ("a", "b"))
    solver.add_rule("d", ("c",))
    solver.add_rule("e", ("missing",))
    solver.add_fact("a")
    solver.add_fact("b")
    result = solver.solve()
    assert result == {"a", "b", "c", "d"}
    assert solver.atom_count() == 6
    assert solver.rule_count() == 3


def test_ltur_rule_with_empty_body_is_fact():
    result = solve_ground_program([("p", ()), ("q", ("p",))])
    assert result == {"p", "q"}


def test_ltur_handles_duplicate_body_atoms():
    # The same atom occurring twice in a body must require only one derivation.
    result = solve_ground_program([("p", ("a", "a"))], facts=["a"])
    assert result == {"a", "p"}


def test_ltur_agrees_with_seminaive_on_ground_horn():
    program = parse_program(
        """
        p(X) :- q(X), r(X).
        s(X) :- p(X).
        """
    )
    database = {"q": {(1,), (2,)}, "r": {(2,), (3,)}}
    seminaive = SemiNaiveEngine(program).evaluate(database)
    solver = GroundHornSolver()
    for value in (1, 2, 3):
        if (value,) in database["q"]:
            solver.add_fact(("q", value))
        if (value,) in database["r"]:
            solver.add_fact(("r", value))
        solver.add_rule(("p", value), (("q", value), ("r", value)))
        solver.add_rule(("s", value), (("p", value),))
    ltur_truth = solver.solve()
    assert {v for (name, v) in ltur_truth if name == "p"} == {v[0] for v in seminaive["p"]}
    assert {v for (name, v) in ltur_truth if name == "s"} == {v[0] for v in seminaive["s"]}

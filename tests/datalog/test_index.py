"""Unit tests for the hash-index layer and the indexed join path."""

from __future__ import annotations

import pytest

from repro.datalog import (
    IndexedDatabase,
    RelationIndex,
    SemiNaiveEngine,
    parse_program,
)
from repro.datalog.engine import EvaluationError


# ---------------------------------------------------------------------------
# RelationIndex
# ---------------------------------------------------------------------------


def test_probe_on_bound_positions():
    index = RelationIndex({(1, "a"), (1, "b"), (2, "a")})
    assert set(index.probe((0,), (1,))) == {(1, "a"), (1, "b")}
    assert set(index.probe((1,), ("a",))) == {(1, "a"), (2, "a")}
    assert set(index.probe((0, 1), (2, "a"))) == {(2, "a")}
    assert list(index.probe((0,), (99,))) == []


def test_probe_without_positions_is_full_scan():
    facts = {(1,), (2,)}
    index = RelationIndex(facts)
    assert set(index.probe((), ())) == facts


def test_add_maintains_materialised_indexes_incrementally():
    index = RelationIndex({(1, "a")})
    assert set(index.probe((0,), (1,))) == {(1, "a")}  # materialises the index
    assert index.add((1, "b"))
    assert not index.add((1, "b"))  # duplicate insert is a no-op
    assert set(index.probe((0,), (1,))) == {(1, "a"), (1, "b")}
    assert index.index_count() == 1


def test_mixed_arity_facts_do_not_break_indexes():
    index = RelationIndex({(1, "a"), (7,)})
    assert set(index.probe((1,), ("a",))) == {(1, "a")}
    index.add((8,))
    assert set(index.probe((1,), ("a",))) == {(1, "a")}


def test_indexed_database_roundtrip():
    database = {"e": {(1, 2), (2, 3)}, "f": {(5,)}}
    indexed = IndexedDatabase(database)
    assert indexed.size("e") == 2
    assert indexed.contains_fact("f", (5,))
    assert not indexed.contains_fact("missing", (1,))
    assert indexed.add_fact("e", (3, 4))
    assert indexed.to_database() == {"e": {(1, 2), (2, 3), (3, 4)}, "f": {(5,)}}


# ---------------------------------------------------------------------------
# Indexed join semantics
# ---------------------------------------------------------------------------


def _both_engines(program_text):
    program = parse_program(program_text)
    return (
        SemiNaiveEngine(program, use_index=True),
        SemiNaiveEngine(program, use_index=False),
    )


def test_transitive_closure_same_result():
    indexed, nested = _both_engines(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        """
    )
    database = {"edge": {(i, i + 1) for i in range(30)}}
    assert indexed.evaluate(database) == nested.evaluate(database)


def test_hoisted_builtin_prunes_mid_join():
    # The builtin's variables are bound after the first literal; the indexed
    # path applies it before joining the second literal, the nested-loop path
    # only at the end — the result must be identical.
    indexed, nested = _both_engines(
        "pair(X, Y) :- item(X, P), lt(P, 10), link(X, Y)."
    )
    database = {
        "item": {("a", 5), ("b", 20), ("c", 9)},
        "link": {("a", 1), ("b", 2), ("c", 3)},
    }
    expected = {("a", 1), ("c", 3)}
    assert indexed.query(database, "pair") == expected
    assert nested.query(database, "pair") == expected


def test_hoisted_negation_agrees_with_filter_at_end():
    indexed, nested = _both_engines(
        """
        ok(X) :- node(X), not banned(X).
        good(X, Y) :- node(X), not banned(X), link(X, Y).
        """
    )
    database = {
        "node": {(1,), (2,), (3,)},
        "banned": {(2,)},
        "link": {(1, 10), (2, 20), (3, 30)},
    }
    assert indexed.evaluate(database) == nested.evaluate(database)
    assert indexed.query(database, "good") == {(1, 10), (3, 30)}


def test_repeated_variable_in_atom():
    indexed, nested = _both_engines("loop(X) :- edge(X, X).")
    database = {"edge": {(1, 1), (1, 2), (3, 3)}}
    assert indexed.query(database, "loop") == {(1,), (3,)}
    assert nested.query(database, "loop") == {(1,), (3,)}


def test_constants_probe_the_index():
    indexed, nested = _both_engines('gold(X) :- labelled(X, "gold").')
    database = {"labelled": {(1, "gold"), (2, "silver"), (3, "gold")}}
    assert indexed.query(database, "gold") == {(1,), (3,)}
    assert nested.query(database, "gold") == {(1,), (3,)}


def test_unbound_builtin_variable_raises_on_both_paths():
    # Safety does not cover variables that occur only in builtins; grounding
    # them must surface an EvaluationError rather than silently dropping.
    for use_index in (True, False):
        engine = SemiNaiveEngine(
            parse_program("p(X) :- q(X), lt(Y, 10)."), use_index=use_index
        )
        with pytest.raises(EvaluationError):
            engine.evaluate({"q": {(1,)}})


def test_cartesian_product_rule():
    indexed, nested = _both_engines("pair(X, Y) :- left(X), right(Y).")
    database = {"left": {(1,), (2,)}, "right": {("a",), ("b",)}}
    expected = {(1, "a"), (1, "b"), (2, "a"), (2, "b")}
    assert indexed.query(database, "pair") == expected
    assert nested.query(database, "pair") == expected


def test_add_batch_dedups_within_the_batch():
    from repro.datalog import RelationIndex

    relation = RelationIndex({(9, 9)})
    # Materialise an index first so batch insertion must maintain it.
    assert list(relation.probe((0,), (9,))) == [(9, 9)]
    added = relation.add_batch([(1, 2), (1, 2), (9, 9), (3, 4), (1, 2)])
    assert added == 2
    assert len(relation) == 3
    # Each fact appears in the probed bucket exactly once.
    assert list(relation.probe((0,), (1,))) == [(1, 2)]
    assert list(relation.probe((0,), (3,))) == [(3, 4)]
    assert list(relation.probe((0,), (9,))) == [(9, 9)]

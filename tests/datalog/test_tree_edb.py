"""Tests for the tau_ur extensional database of documents."""

from __future__ import annotations

from repro.datalog import (
    label_predicate,
    nodes_for_indexes,
    parse_program,
    query_program,
    tree_database,
    tree_signature,
)


def test_label_predicate_name():
    assert label_predicate("td") == "label_td"


def test_tree_database_relations(figure1):
    database = tree_database(figure1)
    # Domain elements are preorder indexes: n1=0, n2=1, n3=2, n4=3, n5=4, n6=5
    assert database["root"] == {(0,)}
    assert database["leaf"] == {(1,), (3,), (4,), (5,)}
    assert database["firstchild"] == {(0, 1), (2, 3)}
    assert database["nextsibling"] == {(1, 2), (2, 5), (3, 4)}
    assert database["lastsibling"] == {(4,), (5,)}
    assert database["firstsibling"] == {(1,), (3,)}
    assert database["child"] == {(0, 1), (0, 2), (0, 5), (2, 3), (2, 4)}
    assert database["lastchild"] == {(0, 5), (2, 4)}
    assert database[label_predicate("n3")] == {(2,)}


def test_tree_database_without_child(figure1):
    database = tree_database(figure1, include_child=False)
    assert "child" not in database


def test_tree_signature_contains_labels(figure1):
    signature = tree_signature(figure1)
    assert "label_n1" in signature
    assert "firstchild" in signature
    assert "child" in signature
    assert "child" not in tree_signature(figure1, include_child=False)


def test_nodes_for_indexes_sorted(figure1):
    nodes = nodes_for_indexes(figure1, [(5,), (1,), 3])
    assert [node.label for node in nodes] == ["n2", "n4", "n6"]


def test_generic_engine_on_tree_database(simple_html):
    """Example 2.1 evaluated with the generic engine over the tree EDB."""
    program = parse_program(
        """
        italic(X) :- label_i(X).
        italic(X) :- italic(X0), firstchild(X0, X).
        italic(X) :- italic(X0), nextsibling(X0, X).
        """
    )
    database = tree_database(simple_html)
    selected = query_program(program, database, "italic")
    nodes = nodes_for_indexes(simple_html, selected)
    texts = {node.normalized_text() for node in nodes if node.label == "#text"}
    # Everything inside <i>free <b>shipping</b></i> is italic.
    assert "free" in texts
    assert "shipping" in texts
    assert not any("Prices include" in t for t in texts)

"""Tests for the compile-once rule plans of repro/datalog/plan.py."""

from __future__ import annotations

import pytest

from repro.datalog import (
    IndexedDatabase,
    RulePlan,
    SemiNaiveEngine,
    compile_stratum,
    parse_program,
)
from repro.datalog.engine import EvaluationError
from repro.datalog.plan import size_bucket

BUILTINS = SemiNaiveEngine.BUILTINS


def _plan(text):
    program = parse_program(text)
    return RulePlan(program.rules[0], BUILTINS)


def test_slot_layout_and_relational_split():
    plan = _plan("p(X, Y) :- e(X, Z), f(Z, Y), lt(X, Y), not g(X).")
    assert plan.nvars == 3  # X, Z, Y
    assert plan.relational == (0, 1)  # e and f; lt and g are filters
    assert len(plan.filters) == 2
    assert plan.head_predicate == "p"
    assert plan.head_unbound is None


def test_plan_run_matches_manual_join():
    plan = _plan("p(X, Y) :- e(X, Z), f(Z, Y).")
    facts = IndexedDatabase({"e": {(1, 2), (3, 4)}, "f": {(2, 5), (4, 6), (9, 9)}})
    assert sorted(plan.run(facts)) == [(1, 5), (3, 6)]


def test_plan_handles_constants_and_repeated_variables():
    plan = _plan('p(X) :- e(X, X, "gold").')
    facts = IndexedDatabase(
        {"e": {(1, 1, "gold"), (1, 2, "gold"), (3, 3, "silver"), (4, 4, "gold")}}
    )
    assert sorted(plan.run(facts)) == [(1,), (4,)]


def test_plan_skips_wrong_arity_facts():
    # A relation holding mixed-arity facts must only match same-arity atoms,
    # exactly like the seed unification.
    plan = _plan("p(X) :- e(X, Y).")
    facts = IndexedDatabase({"e": {(1, 2), (3,), (4, 5, 6)}})
    assert sorted(plan.run(facts)) == [(1,)]


def test_fact_rule_plan_emits_once():
    plan = _plan("p(1, 2).")
    facts = IndexedDatabase()
    assert plan.run(facts) == [(1, 2)]


def test_builtin_filter_hoisted_and_applied():
    plan = _plan("cheap(X) :- item(X, P), lt(P, 10).")
    facts = IndexedDatabase({"item": {("a", 5), ("b", 20), ("c", 9)}})
    assert sorted(plan.run(facts)) == [("a",), ("c",)]


def test_negated_literal_checked_against_full_relation():
    plan = _plan("only(X) :- node(X), not bad(X).")
    facts = IndexedDatabase({"node": {(1,), (2,), (3,)}, "bad": {(2,)}})
    assert sorted(plan.run(facts)) == [(1,), (3,)]


def test_unbound_filter_variable_raises_like_seed():
    # eq(X, Y) with Y bound by no relational literal: safety passes (builtins
    # count as positive body atoms) but execution must raise, as in the seed.
    plan = _plan("p(X) :- q(X), eq(X, Y).")
    facts = IndexedDatabase({"q": {(1,)}})
    with pytest.raises(EvaluationError):
        plan.run(facts)
    # ...but only when a substitution actually reaches the filter.
    empty = IndexedDatabase({"q": set()})
    assert plan.run(empty) == []


def test_filter_incomparable_to_bound_set_is_not_dropped():
    # Regression: a filter whose slot set is incomparable to the bound set
    # after some step (neither subset nor superset) must stay pending until
    # all its slots are bound, not silently vanish (subset comparison is a
    # partial order).  Here lt(W, X) is incomparable to {Y, W} after the
    # second literal and only becomes ready after the third.
    plan = _plan("p(W) :- e(Y, 0), e(Y, W), e(X, X), lt(W, X).")
    facts = IndexedDatabase({"e": {(0, 0)}})
    assert plan.run(facts) == []  # lt(0, 0) fails; nothing derivable
    facts2 = IndexedDatabase({"e": {(0, 0), (0, 1), (2, 2)}})
    # W=1 from e(0,1), X=2 from e(2,2): lt(1,2) holds; also W=0,X=2.
    assert sorted(plan.run(facts2)) == [(0,), (1,)]


def test_delta_position_restricts_to_delta_relation():
    plan = _plan("reach(X, Y) :- reach(X, Z), edge(Z, Y).")
    facts = IndexedDatabase({"reach": {(1, 2), (5, 6)}, "edge": {(2, 3), (6, 7)}})
    delta = IndexedDatabase({"reach": {(1, 2)}})
    # Delta at position 0: only the delta's reach facts seed the join.
    assert sorted(plan.run(facts, delta, 0)) == [(1, 3)]
    # No delta: the full reach relation is used.
    assert sorted(plan.run(facts)) == [(1, 3), (5, 7)]


def test_join_orders_memoised_per_size_bucket():
    plan = _plan("p(X, Y) :- e(X, Z), f(Z, Y).")
    facts = IndexedDatabase({"e": {(1, 2)}, "f": {(2, 3)}})
    plan.run(facts)
    assert plan.plan_count() == 1
    # Same buckets -> no replan.
    plan.run(facts)
    assert plan.plan_count() == 1
    # Growing a relation within its bucket does not replan...
    # (sizes 1 -> bucket 1; size 2-3 -> bucket 2)
    facts.add_fact("f", (9, 9))
    facts.add_fact("f", (8, 8))
    plan.run(facts)
    assert plan.plan_count() == 2  # crossed 1 -> 2-3 boundary: one replan
    facts.add_fact("f", (7, 7))
    plan.run(facts)  # size 4 crosses into the next bucket
    assert plan.plan_count() == 3
    # A delta position gets its own plan family.
    delta = IndexedDatabase({"e": {(1, 2)}})
    plan.run(facts, delta, 0)
    assert plan.plan_count() == 4


def test_size_bucket_is_log2_coarse():
    assert size_bucket(0) == 0
    assert size_bucket(1) == 1
    assert size_bucket(2) == size_bucket(3) == 2
    assert size_bucket(1024) == 11
    assert size_bucket(2047) == 11
    assert size_bucket(2048) == 12


def test_compile_stratum_trigger_map():
    program = parse_program(
        """
        reach(X, Y) :- edge(X, Y).
        reach(X, Y) :- reach(X, Z), edge(Z, Y).
        two_hop(X, Y) :- reach(X, Z), reach(Z, Y).
        """
    )
    plans, triggers = compile_stratum(program.rules, BUILTINS)
    assert len(plans) == 3
    # edge is extensional (not a stratum head): no triggers.
    assert "edge" not in triggers
    fired = triggers["reach"]
    # The recursive rule triggers at position 0, the two_hop rule at both
    # of its reach positions.
    assert {(plan.rule.head.predicate, position) for plan, position in fired} == {
        ("reach", 0),
        ("two_hop", 0),
        ("two_hop", 1),
    }


def test_planned_engine_agrees_with_baselines_on_stratified_program():
    program = parse_program(
        """
        reachable(X) :- source(X).
        reachable(Y) :- reachable(X), edge(X, Y).
        unreachable(X) :- node(X), not reachable(X).
        far(X) :- node(X), not reachable(X), neq(X, 9).
        """
    )
    database = {
        "source": {(1,)},
        "edge": {(1, 2), (2, 3), (3, 1), (4, 5)},
        "node": {(1,), (2,), (3,), (4,), (5,), (9,)},
    }
    planned = SemiNaiveEngine(program).evaluate(database)
    legacy = SemiNaiveEngine(program, use_plans=False).evaluate(database)
    nested = SemiNaiveEngine(program, use_index=False).evaluate(database)
    assert planned == legacy == nested
    assert planned["far"] == {(4,), (5,)}

"""Tests for the O(|P|*|dom|) evaluator and its generic fallback."""

from __future__ import annotations

from repro.mdatalog import (
    InformationExtractionFunction,
    MonadicProgram,
    MonadicTreeEvaluator,
    extraction_functions,
    intersection,
    label_query,
    union,
)
from repro.tree import random_tree, tree


def indexes(nodes):
    return {node.preorder_index for node in nodes}


def test_ground_pipeline_and_generic_agree_on_recursive_program():
    program = MonadicProgram.parse(
        """
        mark(X) :- label_b(X).
        mark(X) :- mark(X0), firstchild(X0, X).
        mark(X) :- mark(X0), nextsibling(X0, X).
        below_a(X) :- label_a(X0), firstchild(X0, X).
        both(X) :- mark(X), below_a(X).
        """,
    )
    fast = MonadicTreeEvaluator(program)
    slow = MonadicTreeEvaluator(program, force_generic=True)
    assert fast.uses_ground_pipeline
    assert not slow.uses_ground_pipeline
    for seed in range(4):
        document = random_tree(150, labels=("a", "b", "c"), seed=seed)
        fast_result = fast.evaluate(document)
        slow_result = slow.evaluate(document)
        for predicate in program.query_predicates:
            assert indexes(fast_result[predicate]) == indexes(slow_result[predicate])


def test_negation_forces_generic_engine():
    program = MonadicProgram.parse(
        """
        plain(X) :- label_p(X), not emphasized(X).
        emphasized(X) :- label_i(X0), firstchild(X0, X).
        """,
        query_predicates=["plain"],
    )
    evaluator = MonadicTreeEvaluator(program)
    assert not evaluator.uses_ground_pipeline
    document = tree(("body", ("p",), ("i", ("p",)), ("p",)))
    selected = evaluator.select(document, "plain")
    labels_of_parents = {node.parent.label for node in selected}
    assert labels_of_parents == {"body"}
    assert len(selected) == 2


def test_query_predicate_results_are_in_document_order():
    program = MonadicProgram.parse("leafish(X) :- leaf(X).")
    document = tree(("r", ("a", ("b",)), ("c",), ("d", ("e",), ("f",))))
    nodes = MonadicTreeEvaluator(program).select(document, "leafish")
    assert [node.preorder_index for node in nodes] == sorted(
        node.preorder_index for node in nodes
    )


def test_lastchild_relation_supported():
    program = MonadicProgram.parse("last(X) :- label_r(X0), lastchild(X0, X).")
    document = tree(("r", ("a",), ("b",), ("c",)))
    selected = MonadicTreeEvaluator(program).select(document, "last")
    assert [node.label for node in selected] == ["c"]


def test_information_extraction_function_interface(figure1):
    program = MonadicProgram.parse(
        "leafnode(X) :- leaf(X). rootnode(X) :- root(X).",
    )
    functions = extraction_functions(program)
    assert set(functions) == {"leafnode", "rootnode"}
    leaf_query = functions["leafnode"]
    assert isinstance(leaf_query, InformationExtractionFunction)
    assert {n.label for n in leaf_query(figure1)} == {"n2", "n4", "n5", "n6"}
    assert functions["rootnode"].select_indexes(figure1) == {0}


def test_information_extraction_function_rejects_auxiliary():
    program = MonadicProgram.parse(
        "a(X) :- leaf(X). b(X) :- a(X).", query_predicates=["b"]
    )
    try:
        InformationExtractionFunction(program, "a")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError for auxiliary predicate")


def test_union_intersection_queries(figure1):
    leaves = label_query("n4")
    others = label_query("n6")
    both = union("u", [leaves, others])
    assert {n.label for n in both(figure1)} == {"n4", "n6"}
    empty = intersection("i", [leaves, others])
    assert empty(figure1) == []
    same = intersection("s", [leaves, leaves])
    assert {n.label for n in same(figure1)} == {"n4"}


def test_query_agreement_helper(figure1):
    first = label_query("n4")
    second = label_query("n4")
    third = label_query("n5")
    assert first.agrees_with(second, figure1)
    assert not first.agrees_with(third, figure1)


def test_use_index_flag_threads_through_generic_path():
    # use_index=False retains the seed nested-loop join; both strategies
    # must select the same nodes through the evaluator API.
    program = MonadicProgram.parse(
        """
        mark(X) :- label_b(X).
        mark(X) :- mark(X0), firstchild(X0, X).
        mark(X) :- mark(X0), nextsibling(X0, X).
        """,
    )
    document = random_tree(80, labels=("a", "b"), seed=11)
    indexed = MonadicTreeEvaluator(program, force_generic=True)
    nested = MonadicTreeEvaluator(program, force_generic=True, use_index=False)
    assert not indexed.uses_ground_pipeline and not nested.uses_ground_pipeline
    assert indexes(indexed.select(document, "mark")) == indexes(
        nested.select(document, "mark")
    )


def test_generic_path_observes_document_mutation():
    # The tree EDB is rebuilt per evaluate() call, so relabelling a node
    # between calls must be reflected (the fixpoint cache is content-keyed).
    program = MonadicProgram.parse("hit(X) :- label_b(X).")
    evaluator = MonadicTreeEvaluator(program, force_generic=True)
    document = tree(("a", ("b",), ("c",)))
    assert indexes(evaluator.evaluate(document)["hit"]) == {1}
    document.node_at(2).label = "b"
    assert indexes(evaluator.evaluate(document)["hit"]) == {1, 2}

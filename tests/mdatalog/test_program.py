"""Tests for MonadicProgram validation and accessors."""

from __future__ import annotations

import pytest

from repro.mdatalog import MonadicityError, MonadicProgram, italic_program


def test_parse_and_query_predicates():
    program = MonadicProgram.parse(
        """
        heading(X) :- label_h1(X).
        aux(X) :- label_div(X).
        """,
        query_predicates=["heading"],
    )
    assert program.query_predicates == frozenset({"heading"})
    assert program.auxiliary_predicates() == {"aux"}
    assert program.idb_predicates() == {"heading", "aux"}
    assert "label_h1" in program.edb_predicates()


def test_default_query_predicates_are_all_idb():
    program = MonadicProgram.parse("a(X) :- label_p(X). b(X) :- a(X).")
    assert program.query_predicates == frozenset({"a", "b"})


def test_unknown_query_predicate_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse("a(X) :- label_p(X).", query_predicates=["zzz"])


def test_non_unary_head_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse("pair(X, Y) :- firstchild(X, Y).")


def test_intensional_predicate_used_binary_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse(
            """
            p(X) :- label_a(X).
            q(X) :- p(X, X).
            """
        )


def test_unknown_binary_relation_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse("p(X) :- cousin(X, Y), label_a(Y).")


def test_ternary_atom_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse("p(X) :- triple(X, Y, Z).")


def test_unsafe_rule_rejected():
    with pytest.raises(MonadicityError):
        MonadicProgram.parse("p(X) :- label_a(Y).")


def test_size_counts_atoms():
    program = italic_program()
    # 3 rules: 1 with a single body atom, 2 with two body atoms.
    assert program.size() == (1 + 1) + (1 + 2) + (1 + 2)
    assert len(program) == 3


def test_to_datalog_program_contains_tree_edb():
    program = italic_program()
    generic = program.to_datalog_program()
    assert "firstchild" in generic.edb_predicates
    assert "label_i" in generic.edb_predicates
    assert generic.is_monadic()


def test_uses_negation_flag():
    program = MonadicProgram.parse("p(X) :- label_a(X), not q(X). q(X) :- label_b(X).")
    assert program.uses_negation()
    assert not italic_program().uses_negation()

"""Experiment E4: TMNF recognition and the Theorem 2.7 rewriting."""

from __future__ import annotations

import pytest

from repro.datalog.parser import parse_rules
from repro.mdatalog import (
    MonadicProgram,
    MonadicTreeEvaluator,
    TMNFRewriteError,
    is_tmnf,
    italic_program,
    rule_tmnf_form,
    to_tmnf,
)
from repro.tree import random_tree, tree


def selection(program, document, predicate):
    return {
        node.preorder_index
        for node in MonadicTreeEvaluator(program).select(document, predicate)
    }


def generic_selection(program, document, predicate):
    return {
        node.preorder_index
        for node in MonadicTreeEvaluator(program, force_generic=True).select(
            document, predicate
        )
    }


def test_rule_tmnf_form_classification():
    rules = parse_rules(
        """
        p(X) :- q(X).
        p(X) :- q(X0), firstchild(X0, X).
        p(X) :- q(X0), firstchild(X, X0).
        p(X) :- q(X), r(X).
        p(X) :- q(X0), child(X0, X).
        p(X) :- q(X0), firstchild(X0, X), r(X).
        """
    )
    assert rule_tmnf_form(rules[0]) == 1
    assert rule_tmnf_form(rules[1]) == 2
    assert rule_tmnf_form(rules[2]) == 2  # inverse orientation allowed
    assert rule_tmnf_form(rules[3]) == 3
    assert rule_tmnf_form(rules[4]) is None  # child not allowed in TMNF
    assert rule_tmnf_form(rules[5]) is None  # too long


def test_italic_program_is_already_tmnf():
    assert is_tmnf(italic_program())


def test_to_tmnf_eliminates_child():
    program = MonadicProgram.parse(
        """
        inner(X) :- label_table(X0), child(X0, X).
        """,
    )
    assert not is_tmnf(program)
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    predicates = {
        literal.atom.predicate
        for rule in rewritten.rules
        for literal in rule.body
        if literal.atom.arity == 2
    }
    assert "child" not in predicates

    document = tree(
        ("html", ("table", ("tr", ("td",)), ("tr",)), ("table", ("tr",)), ("p",))
    )
    assert selection(rewritten, document, "inner") == generic_selection(
        program, document, "inner"
    )
    # children of tables are the <tr> nodes only
    expected = {
        node.preorder_index for node in document.find_all("tr")
    }
    assert selection(rewritten, document, "inner") == expected


def test_to_tmnf_long_path_rule():
    """A subelem-style rule: td nodes inside a tr inside a table."""
    program = MonadicProgram.parse(
        """
        cell(X) :- label_table(T), child(T, R), label_tr(R), child(R, X), label_td(X).
        """,
    )
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    document = tree(
        (
            "body",
            ("table", ("tr", ("td",), ("td",)), ("tr", ("td",))),
            ("div", ("tr", ("td",))),  # td not under a table: must not match
        )
    )
    expected = {
        node.preorder_index
        for node in document.find_all("td")
        if node.parent.label == "tr" and node.parent.parent.label == "table"
    }
    assert selection(rewritten, document, "cell") == expected
    assert generic_selection(program, document, "cell") == expected


def test_to_tmnf_upward_child_edge():
    """Rule whose body walks upwards: select parents of td nodes."""
    program = MonadicProgram.parse("rowlike(X) :- child(X, Y), label_td(Y).")
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    document = tree(("table", ("tr", ("td",)), ("tr", ("th",)), ("td",)))
    expected = {
        node.parent.preorder_index for node in document.find_all("td")
    }
    assert selection(rewritten, document, "rowlike") == expected


def test_to_tmnf_disconnected_component_becomes_global_guard():
    """p(x) <- label_a(x), label_marker(y): selects a-nodes iff a marker exists."""
    program = MonadicProgram.parse("p(X) :- label_a(X), label_marker(Y).")
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)

    with_marker = tree(("root", ("a",), ("marker",), ("a",)))
    without_marker = tree(("root", ("a",), ("b",), ("a",)))
    assert selection(rewritten, with_marker, "p") == {
        node.preorder_index for node in with_marker.find_all("a")
    }
    assert selection(rewritten, without_marker, "p") == set()
    # agreement with the generic engine
    assert selection(rewritten, with_marker, "p") == generic_selection(
        program, with_marker, "p"
    )


def test_to_tmnf_rejects_cyclic_rule_bodies():
    program = MonadicProgram.parse(
        "p(X) :- firstchild(X, Y), nextsibling(X, Y)."
    )
    with pytest.raises(TMNFRewriteError):
        to_tmnf(program)


def test_to_tmnf_rejects_negation():
    program = MonadicProgram.parse(
        "p(X) :- label_a(X), not q(X). q(X) :- label_b(X)."
    )
    with pytest.raises(TMNFRewriteError):
        to_tmnf(program)


def test_tmnf_rewriting_preserves_semantics_on_random_trees():
    program = MonadicProgram.parse(
        """
        hit(X) :- label_a(A), child(A, B), label_b(B), child(B, X), label_c(X).
        hit(X) :- label_d(X0), nextsibling(X0, X).
        """,
        query_predicates=["hit"],
    )
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    for seed in range(5):
        document = random_tree(120, labels=("a", "b", "c", "d"), seed=seed)
        assert selection(rewritten, document, "hit") == generic_selection(
            program, document, "hit"
        )


def test_to_tmnf_output_size_is_linear_in_input():
    """Theorem 2.7: the rewriting is linear — output size O(|P|)."""
    # build a long path rule with 9 variables
    rule_text = (
        "deep(X8) :- label_r(X0), "
        + ", ".join(f"child(X{i}, X{i+1})" for i in range(8))
        + ", leaf(X8)."
    )
    program = MonadicProgram.parse(rule_text)
    rewritten = to_tmnf(program)
    assert is_tmnf(rewritten)
    # each original atom should give rise to only a constant number of rules
    assert len(rewritten.rules) <= 8 * len(program.rules) * 12

"""Experiment E2: the Italic program of Example 2.1.

The program of Example 2.1 marks ``i``-labelled nodes and closes the marking
under ``firstchild`` and ``nextsibling``.  Read literally, the closure covers
the ``i`` node, all of its descendants, *and* the following siblings of any
marked node (that is the subtree of the binary firstchild/nextsibling
encoding of Figure 1).  The tests below check both the headline behaviour —
everything displayed in italics is selected — and that literal closure
semantics.
"""

from __future__ import annotations

from repro.html import parse_html
from repro.mdatalog import MonadicTreeEvaluator, italic_program


# Every <i> element is the last child of its parent, so the closure coincides
# exactly with "nodes displayed in italics".
MARKUP = """
<html><body>
  <p>No italics here.</p>
  <div><span>plain</span><i><span>nested italic span</span></i></div>
  <p>Plain text <i>italic <b>bold italic</b> more</i></p>
</body></html>
"""


def test_italic_selects_exactly_i_subtrees():
    document = parse_html(MARKUP)
    evaluator = MonadicTreeEvaluator(italic_program())
    selected = evaluator.select(document, "italic")
    selected_ids = {id(node) for node in selected}

    expected = set()
    for i_node in document.find_all("i"):
        for node in i_node.iter_preorder():
            expected.add(id(node))
    assert selected_ids == expected
    # sanity: the <b> inside <i> and the nested span are selected
    assert any(node.label == "b" for node in selected)
    assert any(node.label == "span" and "nested" in node.normalized_text() for node in selected)
    # and nothing outside italics is selected
    assert not any(
        node.label == "#text" and "No italics" in node.text for node in selected
    )


def test_italic_closure_includes_following_siblings_of_marked_nodes():
    """The literal firstchild/nextsibling closure of Example 2.1."""
    document = parse_html("<p><i>em</i><span>tail</span></p>")
    selected = MonadicTreeEvaluator(italic_program()).select(document, "italic")
    labels = {node.label for node in selected}
    # the following sibling of the <i> node is part of the closure
    assert "span" in labels
    assert "i" in labels


def test_italic_uses_the_linear_ground_pipeline():
    evaluator = MonadicTreeEvaluator(italic_program())
    assert evaluator.uses_ground_pipeline


def test_italic_on_document_without_italics():
    document = parse_html("<html><body><p>nothing</p></body></html>")
    selected = MonadicTreeEvaluator(italic_program()).select(document, "italic")
    assert selected == []

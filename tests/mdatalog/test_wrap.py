"""Tests for the Section 2.1 output-tree (tree minor) construction."""

from __future__ import annotations

from repro.mdatalog import (
    MonadicProgram,
    MonadicTreeEvaluator,
    assignment_from_queries,
    wrap_tree,
    wrap_with_program,
)
from repro.tree import tree
from repro.xmlgen import to_xml


def make_document():
    return tree(
        (
            "html",
            (
                "body",
                ("table", ("tr", ("td", "text:alpha"), ("td", "text:1")),
                          ("tr", ("td", "text:beta"), ("td", "text:2"))),
                ("p", "text:footer"),
            ),
        )
    )


def test_wrap_tree_preserves_hierarchy_and_order():
    document = make_document()
    selections = {
        "record": document.find_all("tr"),
        "field": document.find_all("td"),
    }
    result = wrap_tree(document, selections, root_name="items")
    assert result.name == "items"
    records = result.find_all("record")
    assert len(records) == 2
    assert [len(record.find_all("field")) for record in records] == [2, 2]
    assert records[0].find_all("field")[0].text == "alpha"
    assert records[1].find_all("field")[1].text == "2"


def test_wrap_tree_skips_unselected_intermediate_nodes():
    document = make_document()
    # select only table and td: the intermediate tr nodes disappear but the
    # td nodes stay below the table (edge contraction along unselected paths)
    selections = {"tbl": document.find_all("table"), "cell": document.find_all("td")}
    result = wrap_tree(document, selections)
    table_element = result.find("tbl")
    assert table_element is not None
    assert len(table_element.find_all("cell")) == 4


def test_wrap_tree_empty_selection():
    document = make_document()
    assert wrap_tree(document, {}).children == []


def test_wrap_tree_multiple_predicates_on_one_node():
    document = make_document()
    first_td = document.find_all("td")[0]
    selections = {"a": [first_td], "b": [first_td]}
    result = wrap_tree(document, selections)
    assert result.children[0].name == "a+b"
    custom = wrap_tree(
        document, selections, label_for=lambda node, predicates: predicates[-1]
    )
    assert custom.children[0].name == "b"


def test_wrap_with_program_hides_auxiliary_predicates():
    document = make_document()
    program = MonadicProgram.parse(
        """
        rowaux(X) :- label_tr(X).
        cell(X) :- rowaux(X0), firstchild(X0, X).
        """,
    )
    selections = MonadicTreeEvaluator(program).evaluate(document)
    result = wrap_with_program(document, selections, auxiliary=["rowaux"])
    assert result.find("rowaux") is None
    assert len(result.find_all("cell")) == 2


def test_assignment_from_queries_orders_predicates():
    document = make_document()
    node = document.find_all("td")[0]
    assignment = assignment_from_queries(document, {"z": [node], "a": [node]})
    assert assignment[node.preorder_index] == ["a", "z"]


def test_wrap_tree_output_serialises_to_xml():
    document = make_document()
    result = wrap_tree(document, {"cell": document.find_all("td")})
    xml = to_xml(result)
    assert xml.count("<cell>") == 4
    assert "alpha" in xml

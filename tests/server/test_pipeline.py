"""Tests for the Transformation Server: components, pipes, change detection."""

from __future__ import annotations

import pytest

from repro.elog import parse_elog
from repro.mdatalog import MonadicProgram
from repro.server import (
    ChangeDetector,
    ChangeGatedDeliverer,
    DatalogQueryComponent,
    FilterComponent,
    InformationPipe,
    IntegrationComponent,
    JoinComponent,
    PipelineError,
    RenameComponent,
    SmsDeliverer,
    SortComponent,
    TransformationServer,
    TransformerComponent,
    WrapperComponent,
    XmlDeliverer,
    XmlSourceComponent,
)
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site
from repro.xmlgen import XmlElement, parse_xml, to_xml


def make_catalog(*pairs):
    root = XmlElement("catalog")
    for title, price in pairs:
        book = root.add("book")
        book.add("title", text=title)
        book.add("price", text=str(price))
    return root


def test_pipe_topological_execution_and_results():
    pipe = InformationPipe("books")
    pipe.add(XmlSourceComponent("source", lambda: make_catalog(("A", 10), ("B", 30), ("C", 20))))
    pipe.add(FilterComponent("cheap", "book", lambda b: float(b.findtext("price")) <= 20,
                             root_name="cheap"))
    pipe.add(SortComponent("sorted", "book", "price", root_name="sorted"))
    pipe.add(XmlDeliverer("out"))
    pipe.chain("source", "cheap", "sorted", "out")
    results = pipe.run()
    titles = [b.findtext("title") for b in results["sorted"].find_all("book")]
    assert titles == ["A", "C"]
    assert pipe.component("out").last_delivery() is not None
    assert "<title>A</title>" in pipe.component("out").last_delivery().body


def test_pipe_rejects_cycles_and_duplicates():
    pipe = InformationPipe("p")
    pipe.add(XmlSourceComponent("a", lambda: XmlElement("x")))
    pipe.add(TransformerComponent("b", lambda d: d))
    pipe.connect("a", "b")
    pipe.connect("b", "a")
    with pytest.raises(PipelineError):
        pipe.run()
    with pytest.raises(PipelineError):
        pipe.add(XmlSourceComponent("a", lambda: XmlElement("x")))
    with pytest.raises(PipelineError):
        pipe.connect("a", "missing")


def test_integration_and_join_components():
    left = XmlSourceComponent("left", lambda: make_catalog(("A", 10), ("B", 20)))
    right_root = XmlElement("reviews")
    for title, stars in (("a", 5), ("b", 3)):
        review = right_root.add("review")
        review.add("title", text=title)
        review.add("stars", text=str(stars))
    right = XmlSourceComponent("right", lambda: right_root)

    pipe = InformationPipe("joined")
    pipe.add(left)
    pipe.add(right)
    pipe.add(IntegrationComponent("merge"))
    pipe.add(JoinComponent("join", "book", "review", key="title"))
    pipe.connect("left", "merge")
    pipe.connect("right", "merge")
    pipe.connect("left", "join")
    pipe.connect("right", "join")
    results = pipe.run()
    assert len(results["merge"].children) == 2
    joined_books = results["join"].find_all("book")
    assert len(joined_books) == 2
    assert joined_books[0].find("review") is not None
    assert joined_books[0].find("review").findtext("stars") == "5"


def test_rename_component_maps_to_nitf():
    source = XmlSourceComponent("s", lambda: make_catalog(("A", 1)))
    rename = RenameComponent("nitf", {"catalog": "nitf", "book": "block", "title": "hl1"})
    pipe = InformationPipe("nitf-pipe")
    pipe.add(source)
    pipe.add(rename)
    pipe.connect("s", "nitf")
    result = pipe.run()["nitf"]
    assert result.name == "nitf"
    assert result.find("block") is not None
    assert result.find("block").find("hl1") is not None


def test_wrapper_component_runs_elog_program():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=4, seed=1))
    program = parse_elog(
        """
        book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
        title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
        price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
        """
    )
    pipe = InformationPipe("shop-a")
    pipe.add(WrapperComponent("wrap", program, web, "books-a.test/bestsellers", root_name="books"))
    pipe.add(XmlDeliverer("deliver"))
    pipe.connect("wrap", "deliver")
    results = pipe.run()
    books = results["wrap"].find_all("book")
    assert len(books) == 4
    assert all(book.find("title") is not None and book.find("price") is not None for book in books)
    assert results["wrap"].attributes["source"] == "books-a.test/bestsellers"


def test_wrapper_component_reuses_one_extractor():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=1))
    program = parse_elog(
        "book(S, X) <- document(_, S), subelem(S, ?.tr, X),"
        " contains(X, (?.td, [(class, title, exact)]))"
    )
    wrapper = WrapperComponent("wrap", program, web, "books-a.test/bestsellers")
    first = wrapper._extractor
    wrapper.process([])
    wrapper.process([])
    assert wrapper._extractor is first  # periodic activations reuse the interpreter


def test_datalog_query_component_serves_hot_documents_from_cache():
    from repro.tree.builder import tree

    documents = [
        tree(("doc", ("a", "b"), ("b",))),
        tree(("doc", ("b", "a"), ("a", ("b",)))),
    ]
    current = {"index": 0}

    def supplier():
        return documents[current["index"]]

    program = MonadicProgram.parse(
        "hit(X) :- label_b(X).", query_predicates=["hit"]
    )
    component = DatalogQueryComponent(
        "wrap", program, supplier, cache_size=4, force_generic=True
    )
    pipe = InformationPipe("datalog")
    pipe.add(component)

    expected = []
    for document in documents:
        expected.append(
            sorted(
                str(node.preorder_index)
                for node in document
                if node.label == "b"
            )
        )
    for round_index in range(3):
        for doc_index in range(2):
            current["index"] = doc_index
            result = pipe.run()["wrap"]
            hits = sorted(r.attributes["node"] for r in result.find_all("hit"))
            assert hits == expected[doc_index]
            assert all(r.attributes["label"] == "b" for r in result.find_all("hit"))
    info = component.cache_info()
    # 6 activations over a 2-document working set: 2 misses, 4 hits.
    assert info.misses == 2 and info.hits == 4
    assert info.hit_rate == pytest.approx(2 / 3)


def test_datalog_query_component_ground_pipeline_caches_by_content():
    from repro.tree.builder import tree

    program = MonadicProgram.parse(
        "hit(X) :- label_b(X).", query_predicates=["hit"]
    )
    component = DatalogQueryComponent(
        "wrap", program, lambda: tree(("doc", ("b",), ("a",))), cache_size=4
    )
    # The supplier builds an equal-but-distinct document per call; the
    # ground pipeline's tree-fingerprint LRU must still hit.
    component.process([])
    component.process([])
    info = component.cache_info()
    assert info.misses == 1 and info.hits == 1


def test_join_component_skips_keyless_records():
    # Records whose key element is missing (or empty) must not be joined on
    # the normalised empty string — that cross-joined every keyless record.
    left_root = XmlElement("catalog")
    keyed = left_root.add("book")
    keyed.add("title", text="A")
    left_root.add("book")  # no <title> at all
    blank = left_root.add("book")
    blank.add("title", text="   ")  # whitespace-only normalises to ""

    right_root = XmlElement("reviews")
    review = right_root.add("review")
    review.add("title", text="a")
    review.add("stars", text="5")
    keyless_review = right_root.add("review")
    keyless_review.add("stars", text="1")

    pipe = InformationPipe("joined")
    pipe.add(XmlSourceComponent("left", lambda: left_root))
    pipe.add(XmlSourceComponent("right", lambda: right_root))
    pipe.add(JoinComponent("join", "book", "review", key="title"))
    pipe.connect("left", "join")
    pipe.connect("right", "join")
    books = pipe.run()["join"].find_all("book")
    assert len(books) == 3  # keyless primaries still pass through, unjoined
    assert books[0].find("review") is not None
    assert books[1].find("review") is None
    assert books[2].find("review") is None


def test_datalog_query_component_emits_records_in_document_order():
    from repro.tree.builder import tree

    document = tree(("doc", ("b",), ("a", ("b",)), ("b",)))
    program = MonadicProgram.parse("hit(X) :- label_b(X).", query_predicates=["hit"])
    component = DatalogQueryComponent("wrap", program, lambda: document)
    for _ in range(3):  # identical (and sorted) across repeated activations
        result = component.process([])
        indexes = [int(r.attributes["node"]) for r in result.find_all("hit")]
        assert indexes == sorted(indexes)
        assert len(indexes) == 3


def test_transformation_server_scheduling():
    counter = {"runs": 0}

    def supply():
        counter["runs"] += 1
        return XmlElement("tickdoc")

    fast = InformationPipe("fast")
    fast.add(XmlSourceComponent("s", supply))
    slow = InformationPipe("slow")
    slow.add(XmlSourceComponent("s", supply))

    server = TransformationServer()
    server.register(fast, period=1)
    server.register(slow, period=3)
    server.tick(steps=6)
    fast_runs = sum(1 for _, name in server.run_log if name == "fast")
    slow_runs = sum(1 for _, name in server.run_log if name == "slow")
    assert fast_runs == 6
    assert slow_runs == 2
    assert server.pipes() == ["fast", "slow"]
    with pytest.raises(PipelineError):
        server.register(fast)


def test_run_all_goes_through_scheduler_bookkeeping():
    counter = {"runs": 0}

    def supply():
        counter["runs"] += 1
        return XmlElement("doc")

    pipe = InformationPipe("p")
    pipe.add(XmlSourceComponent("s", supply))
    server = TransformationServer()
    server.register(pipe, period=2)

    results = server.run_all()
    assert set(results) == {"p"} and counter["runs"] == 1
    # The run was logged and counts as the activation at the current clock...
    assert server.run_log == [(0, "p")]
    # ...so the next ticks must not double-run until the period elapses.
    assert server.tick() == []  # clock 0 -> 1: next_activation is 2
    assert server.tick() == []  # clock 1 -> 2
    assert server.tick() == ["p"]  # clock 2: the period has elapsed
    assert counter["runs"] == 2
    assert server.run_log == [(0, "p"), (2, "p")]


def test_html_portal_deliverer_escapes_scraped_text():
    from repro.server import HtmlPortalDeliverer

    root = XmlElement("board")
    record = root.add("song")
    record.add("title", text="Bold & <Beautiful>")
    record.add("artist", text='"AC/DC" <script>alert(1)</script>')
    deliverer = HtmlPortalDeliverer("portal", "song", ["title", "artist"])
    delivery = deliverer.deliver(root)
    assert "<script>" not in delivery.body
    assert "Bold &amp; &lt;Beautiful&gt;" in delivery.body
    assert "&lt;script&gt;alert(1)&lt;/script&gt;" in delivery.body
    # The table markup itself survives.
    assert "<td>" in delivery.body and "<th>title</th>" in delivery.body


def test_wrapper_components_share_one_interpreter_per_program():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=1))
    program = parse_elog(
        "book(S, X) <- document(_, S), subelem(S, ?.tr, X),"
        " contains(X, (?.td, [(class, title, exact)]))"
    )
    shared_a = WrapperComponent("a", program, web, "books-a.test/bestsellers")
    shared_b = WrapperComponent("b", program, web, "books-a.test/bestsellers")
    assert shared_a._extractor is shared_b._extractor
    private = WrapperComponent(
        "c", program, web, "books-a.test/bestsellers", share_interpreter=False
    )
    assert private._extractor is not shared_a._extractor
    # Another program gets its own interpreter.
    other = WrapperComponent(
        "d", parse_elog("book(S, X) <- document(_, S), subelem(S, ?.tr, X)"),
        web, "books-a.test/bestsellers",
    )
    assert other._extractor is not shared_a._extractor
    # Sharing does not change what gets extracted.
    assert shared_a.process([]).children == private.process([]).children


def test_change_detector_reports_added_changed_removed():
    detector = ChangeDetector("flight", key="number")
    first = parse_xml(
        "<board><flight><number>OS 1</number><status>scheduled</status></flight>"
        "<flight><number>OS 2</number><status>scheduled</status></flight></board>"
    )
    second = parse_xml(
        "<board><flight><number>OS 1</number><status>delayed</status></flight>"
        "<flight><number>OS 3</number><status>scheduled</status></flight></board>"
    )
    baseline = detector.observe(first)
    assert len(baseline.added) == 2
    report = detector.observe(second)
    assert [f.findtext("number") for f in report.changed] == ["OS 1"]
    assert [f.findtext("number") for f in report.added] == ["OS 3"]
    assert report.removed == ["OS 2"]
    assert "1 added" in report.summary()


def test_change_gated_deliverer_only_fires_on_change():
    sms = SmsDeliverer("sms", "+43 123", summarise=lambda doc: doc.full_text())
    gated = ChangeGatedDeliverer(
        "gate", sms, ChangeDetector("flight", key="number"),
        message=lambda report: f"flight update: {report.summary()}",
    )
    snapshot = parse_xml(
        "<board><flight><number>OS 1</number><status>scheduled</status></flight></board>"
    )
    gated.process([snapshot])           # baseline, no delivery
    gated.process([snapshot])           # unchanged, no delivery
    assert sms.deliveries == []
    changed = parse_xml(
        "<board><flight><number>OS 1</number><status>delayed</status></flight></board>"
    )
    gated.process([changed])
    assert len(sms.deliveries) == 1
    assert sms.deliveries[0].channel == "sms"
    assert "changed" in sms.deliveries[0].body


# ---------------------------------------------------------------------------
# Prefetch: the async-capable fetcher protocol through the server layer
# ---------------------------------------------------------------------------


class RecordingExecutor:
    """A synchronous stand-in for a thread pool that records submissions."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future

        self.submitted.append(args[0] if args else kwargs.get("url"))
        future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            future.set_exception(error)
        return future


def _wrapper_program():
    return parse_elog(
        "book(S, X) <- document(_, S), subelem(S, ?.tr, X),"
        " contains(X, (?.td, [(class, title, exact)]))"
    )


def test_pipe_run_with_executor_prefetches_and_matches_plain_run():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=3, seed=2))
    url = "books-a.test/bestsellers"

    def build_pipe():
        pipe = InformationPipe("shop")
        pipe._add(WrapperComponent("wrap", _wrapper_program(), web, url))
        pipe._add(XmlDeliverer("deliver"))
        pipe._connect("wrap", "deliver")
        return pipe

    plain = build_pipe().run()
    executor = RecordingExecutor()
    prefetched = build_pipe().run(executor=executor)
    assert executor.submitted == [url]
    assert to_xml(prefetched["wrap"]) == to_xml(plain["wrap"])


def test_run_all_prefetches_every_pipe_before_the_first_runs():
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=3))
    # Two pipes wrapping the same table page (the list/div sites need a
    # different wrapper); what matters is that BOTH fetches start up front.
    urls = ["books-a.test/bestsellers", "books-a.test/bestsellers"]
    server = TransformationServer()
    ran_before_second_fetch = []

    class OrderProbeExecutor(RecordingExecutor):
        def submit(self, fn, *args, **kwargs):
            ran_before_second_fetch.append(len(server.run_log))
            return super().submit(fn, *args, **kwargs)

    for index, url in enumerate(urls):
        pipe = InformationPipe(f"pipe-{index}")
        pipe._add(WrapperComponent("wrap", _wrapper_program(), web, url))
        server.register(pipe)

    executor = OrderProbeExecutor()
    results = server.run_all(executor=executor)
    # Both fetches were submitted before ANY pipe ran: cross-pipe overlap.
    assert executor.submitted == urls
    assert ran_before_second_fetch == [0, 0]
    assert set(results) == {"pipe-0", "pipe-1"}
    # The prefetched pages fed the normal wrapper output.
    for index in range(2):
        assert results[f"pipe-{index}"]["wrap"].find_all("book")


def test_aliased_wrapper_component_sees_its_own_program_mutations():
    """Content-keyed sharing must not swallow post-construction mutations.

    Two components built from separate parses of one wrapper text alias one
    interpreter; when one of them mutates ITS program (mark_auxiliary), its
    next process() must honour the mutation (the identity-keyed pre-PR-5
    cache did, via a private interpreter per program object)."""
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=4))
    text = """
    book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
    title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
    """
    url = "books-a.test/bestsellers"
    component_a = WrapperComponent("a", parse_elog(text), web, url)
    component_b = WrapperComponent("b", parse_elog(text), web, url)
    assert component_b._extractor is component_a._extractor  # content-aliased

    assert list(component_b.process([]).iter("title"))
    component_b.program.mark_auxiliary("title")
    # B's own mutation takes effect on B...
    assert not list(component_b.process([]).iter("title"))
    # ...and does not opt A into it.
    assert list(component_a.process([]).iter("title"))


def test_caller_supplied_extractor_is_never_swapped_for_the_shared_one():
    """The 'pre-built interpreter wins' contract survives content keying:
    a component given extractor= keeps it even when that interpreter's
    program content differs from the component's own program."""
    from repro.elog import Extractor

    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=5))
    tuned = Extractor(
        parse_elog(
            "book(S, X) <- document(_, S), subelem(S, ?.tr, X),"
            " contains(X, (?.td, [(class, price, exact)]))"
        ),
        fetcher=web,
        max_rounds=3,
    )
    component = WrapperComponent(
        "wrap",
        _wrapper_program(),  # content differs from the tuned extractor's
        web,
        "books-a.test/bestsellers",
        extractor=tuned,
    )
    component.process([])
    assert component._extractor is tuned


def test_failed_run_discards_unconsumed_prefetches():
    """A pipe failure must not strand later pipes' resolved futures — the
    next activation would otherwise extract a stale snapshot and break
    change detection."""
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=2, seed=6))
    url = "books-a.test/bestsellers"

    class FailingSource(XmlSourceComponent):
        def process(self, inputs):
            raise RuntimeError("source exploded")

    server = TransformationServer()
    failing = InformationPipe("failing")
    failing._add(FailingSource("boom", lambda: XmlElement("x")))
    server.register(failing)
    healthy = InformationPipe("healthy")
    wrapper = WrapperComponent("wrap", _wrapper_program(), web, url)
    healthy._add(wrapper)
    server.register(healthy)

    executor = RecordingExecutor()
    with pytest.raises(RuntimeError):
        server.run_all(executor=executor)
    # The prefetch for the never-run pipe was started, then discarded.
    assert executor.submitted == [url]
    assert wrapper._pending_fetch is None
    # The page changes; the next activation must see the NEW content, not
    # the prefetched snapshot.
    web.update(url, lambda html: html.replace("title", "headline"))
    result = healthy.run()["wrap"]
    assert not result.find_all("book")  # class=title rows are gone


def test_prefetch_uses_the_active_extractors_fetcher():
    """Prefetched and plain runs must acquire from the same source: a
    caller-supplied extractor='s own fetcher wins over the constructor's."""
    from repro.elog import Extractor

    web_a = SimulatedWeb()
    web_a.publish_many(bookstore_site(count=1, seed=7))
    web_b = SimulatedWeb()
    web_b.publish_many(bookstore_site(count=3, seed=8))
    url = "books-a.test/bestsellers"
    program = _wrapper_program()
    component = WrapperComponent(
        "wrap", program, web_a, url, extractor=Extractor(program, fetcher=web_b)
    )
    plain_books = len(component.process([]).find_all("book"))
    assert plain_books == 3  # web_b, not web_a

    component.prefetch(RecordingExecutor())
    assert web_b.fetch_log[-1] == url  # the prefetch went through web_b
    fetched_books = len(component.process([]).find_all("book"))
    assert fetched_books == plain_books

"""Test package (unique module paths for duplicate test basenames)."""

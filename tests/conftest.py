"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.html import parse_html
from repro.tree import figure1_tree, random_tree, tree


@pytest.fixture
def figure1():
    """The 6-node example tree of Figure 1."""
    return figure1_tree()


@pytest.fixture
def simple_html():
    """A small but structurally rich HTML page used across test modules."""
    markup = """
    <html>
      <head><title>Bestsellers</title></head>
      <body>
        <h1>Books</h1>
        <table id="books">
          <tr><td><a href="/b/1">Book One</a></td><td>$10.00</td><td>3 bids</td></tr>
          <tr><td><a href="/b/2">Book Two</a></td><td>EUR 12.50</td><td>7 bids</td></tr>
          <tr><td><a href="/b/3">Book Three</a></td><td>$8.99</td><td>1 bid</td></tr>
        </table>
        <p>Prices include <i>free <b>shipping</b></i> today.</p>
        <hr/>
      </body>
    </html>
    """
    return parse_html(markup, url="http://example.test/books")


@pytest.fixture
def medium_random_tree():
    return random_tree(300, labels=("a", "b", "c", "d", "e"), seed=7)


@pytest.fixture
def nested_tree():
    return tree(
        (
            "doc",
            ("section", ("title",), ("para", ("i", ("b",))), ("para",)),
            ("section", ("title",), ("list", ("item",), ("item",), ("item",))),
        )
    )

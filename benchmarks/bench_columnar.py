"""Columnar storage vs the tuple-at-a-time layer, same compiled plans.

The columnar join core (repro/datalog/columns.py) stores each relation as
an append-only interned row array with per-column posting sets; semi-naive
deltas become row-id range windows and multi-bound probes become composite
lookups or batch posting-set intersections.  ``EngineOptions(storage=
"tuple")`` is the ablation that runs the *same* specialised rule executors
against the PR-2 indexed storage, so these workloads isolate what batch
storage itself buys: no delta databases to build/clear/re-index, zero-copy
delta windows, and zero-materialisation posting probes.

Records ``columnar_*`` workloads into BENCH_engine.json and asserts the
fixpoints agree exactly; the speed floor is deliberately modest (the tuple
ablation shares the executor specialisation, so the storage-only gap is
smaller than the headline ``reach_*`` numbers vs the PR-1 engine).
"""

from __future__ import annotations

import random
import statistics
import time

from repro.datalog import EngineOptions, SemiNaiveEngine, parse_program

REACH_PROGRAM_TEXT = """
reach(Y) :- source(X), edge(X, Y).
reach(Y) :- reach(X), edge(X, Y).
"""

SG_PROGRAM_TEXT = """
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
"""


def _chain_workload(length):
    program = parse_program(REACH_PROGRAM_TEXT)
    return program, {"edge": {(i, i + 1) for i in range(length)}, "source": {(0,)}}


def _random_reach_workload(edge_count, seed=7):
    chain_length = (edge_count * 9) // 10
    node_count = edge_count + edge_count // 5
    rng = random.Random(seed)
    edges = {(i, i + 1) for i in range(chain_length)}
    while len(edges) < edge_count:
        edges.add((rng.randrange(node_count), rng.randrange(node_count)))
    return parse_program(REACH_PROGRAM_TEXT), {"edge": edges, "source": {(0,)}}


def _same_generation_workload(depth):
    parent, sibling = set(), set()
    nodes, next_id = [0], 1
    for _ in range(depth):
        grown = []
        for node in nodes:
            left, right = next_id, next_id + 1
            next_id += 2
            parent.add((left, node))
            parent.add((right, node))
            sibling.add((left, right))
            grown.extend((left, right))
        nodes = grown
    return parse_program(SG_PROGRAM_TEXT), {"parent": parent, "sibling": sibling}


def _samples(run, repeats=3):
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return times, result


def _compare_storage(program, database, bench_record, name, min_speedup):
    columnar = SemiNaiveEngine(program, options=EngineOptions(storage="columnar"))
    tuple_engine = SemiNaiveEngine(program, options=EngineOptions(storage="tuple"))
    columnar_times, columnar_result = _samples(lambda: columnar.evaluate(database))
    tuple_times, tuple_result = _samples(lambda: tuple_engine.evaluate(database))
    assert columnar_result == tuple_result
    speedup = min(tuple_times) / max(min(columnar_times), 1e-9)
    bench_record(f"columnar_{name}_s", statistics.median(columnar_times))
    bench_record(f"columnar_{name}_tuple_ablation_s", statistics.median(tuple_times))
    bench_record(f"columnar_{name}_speedup_x", speedup)
    print(
        f"\n{name}: columnar {min(columnar_times):.4f} s vs "
        f"tuple storage {min(tuple_times):.4f} s (speed-up {speedup:.2f}x)"
    )
    assert speedup >= min_speedup
    return columnar_result


def test_columnar_beats_tuple_on_chain_reach(quick, bench_record):
    length = 20_000 if quick else 100_000
    program, database = _chain_workload(length)
    result = _compare_storage(
        program, database, bench_record, f"reach_chain_{length}", min_speedup=1.1
    )
    assert len(result["reach"]) == length


def test_columnar_beats_tuple_on_random_reach(quick, bench_record):
    edge_count = 20_000 if quick else 100_000
    program, database = _random_reach_workload(edge_count)
    result = _compare_storage(
        program, database, bench_record, f"reach_random_{edge_count}", min_speedup=1.1
    )
    assert len(result["reach"]) > edge_count // 2


def test_columnar_beats_tuple_on_same_generation(quick, bench_record):
    depth = 6 if quick else 8
    program, database = _same_generation_workload(depth)
    result = _compare_storage(
        program,
        database,
        bench_record,
        f"same_generation_depth_{depth}",
        min_speedup=1.2,
    )
    assert result["sg"]


def test_columnar_storage_counters_track_the_fixpoint(bench_record):
    """The storage counters surfaced by ``engine_info()`` reflect the
    batched loop: one delta window per advanced watermark, every derived
    row counted, no per-iteration delta rebuild anywhere."""
    program, database = _chain_workload(2_000)
    engine = SemiNaiveEngine(program)
    result = engine.evaluate(database)
    info = engine.engine_info()
    assert info.storage == "columnar"
    assert info.rows_interned >= len(result["reach"]) + len(database["edge"])
    assert info.delta_batches >= 1_999
    assert info.delta_rows >= 2_000
    assert info.max_delta_batch >= 1
    bench_record("columnar_chain_2000_delta_batches", float(info.delta_batches))

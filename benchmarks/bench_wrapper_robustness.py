"""Experiment E18 (Section 2.5): schema-less wrappers survive layout changes
in parts of the page not relevant to the extracted objects."""

from __future__ import annotations

import pytest

from repro.elog import Extractor, figure5_program
from repro.html import parse_html
from repro.web.sites.ebay import generate_items, perturb_layout, render_page

ITEM_COUNT = 20
PERTURBATIONS = 5


def test_extraction_identical_under_layout_perturbations():
    items = generate_items(ITEM_COUNT, seed=77)
    original_html = render_page(items)
    program = figure5_program()
    reference = Extractor(program).extract(
        document=parse_html(original_html, url="www.ebay.com")
    )
    survived = 0
    for seed in range(PERTURBATIONS):
        perturbed = perturb_layout(original_html, seed=seed)
        base = Extractor(program).extract(document=parse_html(perturbed, url="www.ebay.com"))
        identical = all(
            base.values_of(pattern) == reference.values_of(pattern)
            for pattern in ("record", "itemdes", "price", "bids")
        )
        survived += int(identical)
    print(f"\nE18  robustness: wrapper unchanged under {survived}/{PERTURBATIONS} "
          "layout perturbations (paper's claim: schema-less wrappers are robust)")
    assert survived == PERTURBATIONS


@pytest.mark.benchmark(group="E18-robustness")
def test_benchmark_extraction_on_perturbed_page(benchmark):
    items = generate_items(ITEM_COUNT, seed=78)
    perturbed = perturb_layout(render_page(items), seed=1)
    document = parse_html(perturbed, url="www.ebay.com")
    program = figure5_program()
    benchmark(lambda: Extractor(program).extract(document=document))

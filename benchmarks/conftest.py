"""Shared configuration for the benchmark suite.

Every benchmark prints, in addition to the pytest-benchmark timing table, the
series the corresponding experiment in EXPERIMENTS.md reports (counts,
speed-up factors, crossover points), so a single
``pytest benchmarks/ --benchmark-only`` run regenerates all reported numbers.
"""

from __future__ import annotations

import time

import pytest


def _best_of(run, repeats=3):
    """(best wall-clock over ``repeats`` runs, last result).

    The min damps scheduler/GC noise so wall-clock comparison assertions
    hold on loaded CI runners; pass ``repeats=1`` for expensive baselines
    (noise can only inflate them, never flip a faster-than assertion).
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="session")
def best_of():
    return _best_of


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the benchmark workloads at reduced sizes",
    )


@pytest.fixture(scope="session")
def quick(request):
    return request.config.getoption("--quick")

"""Shared configuration for the benchmark suite.

Every benchmark prints, in addition to the pytest-benchmark timing table, the
series the corresponding experiment in EXPERIMENTS.md reports (counts,
speed-up factors, crossover points), so a single
``pytest benchmarks/ --benchmark-only`` run regenerates all reported numbers.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the benchmark workloads at reduced sizes",
    )


@pytest.fixture(scope="session")
def quick(request):
    return request.config.getoption("--quick")

"""Shared configuration for the benchmark suite.

Every benchmark prints, in addition to the pytest-benchmark timing table, the
series the corresponding experiment in EXPERIMENTS.md reports (counts,
speed-up factors, crossover points), so a single
``pytest benchmarks/ --benchmark-only`` run regenerates all reported numbers.

Engine benchmarks additionally record their headline numbers through the
``bench_record`` fixture; at session end the accumulated
``{workload: median seconds (or ratio)}`` mapping is written to
``BENCH_engine.json`` at the repo root — the perf-trajectory file CI uploads
as an artifact so future PRs can compare against it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

_RECORDED: dict = {}


def _best_of(run, repeats=3):
    """(best wall-clock over ``repeats`` runs, last result).

    The min damps scheduler/GC noise so wall-clock comparison assertions
    hold on loaded CI runners; pass ``repeats=1`` for expensive baselines
    (noise can only inflate them, never flip a faster-than assertion).
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="session")
def best_of():
    return _best_of


@pytest.fixture(scope="session")
def bench_record():
    """Record ``workload -> value`` into BENCH_engine.json at session end."""

    def record(workload: str, value: float) -> None:
        _RECORDED[workload] = round(float(value), 6)

    return record


def pytest_sessionfinish(session, exitstatus):
    # Failed or -x-aborted runs must not clobber the trajectory file, and a
    # partial run (one benchmark file) merges into the existing mapping
    # instead of dropping every workload it did not execute.
    if not _RECORDED or exitstatus != 0:
        return
    merged = {}
    if BENCH_JSON_PATH.exists():
        try:
            merged = json.loads(BENCH_JSON_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_RECORDED)
    payload = dict(sorted(merged.items()))
    BENCH_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nwrote {len(_RECORDED)} workload timings to {BENCH_JSON_PATH} "
        f"({len(payload)} total)"
    )


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run the benchmark workloads at reduced sizes",
    )


@pytest.fixture(scope="session")
def quick(request):
    return request.config.getoption("--quick")

"""Experiment E8 (Theorems 4.1/4.2): Core XPath is PTIME; naive engines are
exponential in the query size.

The query family //a[.//a[.//a[...]]] with nested predicates is evaluated by

* the context-set (linear-time) evaluator of [15], and
* the node-at-a-time baseline reproducing the pre-2002 engine behaviour.

The printed table shows the crossover: the naive engine's time explodes with
the nesting depth while the linear evaluator barely moves — the shape behind
Figure 6's placement of Core XPath inside PTIME.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import nested_predicate_xpath
from repro.tree import random_tree
from repro.xpath import CoreXPathEvaluator, NaiveXPathEvaluator

# The comparison document is deliberately small: the naive strategy is
# exponential in the predicate nesting depth, so even 200 nodes are enough to
# show the blow-up within seconds.
COMPARISON_DOCUMENT = random_tree(200, labels=("a", "a", "a", "b"), max_children=3, seed=11)
LINEAR_DOCUMENT = random_tree(5_000, labels=("a", "a", "a", "b"), max_children=3, seed=12)
DEPTHS = (1, 2, 3)


def test_linear_vs_naive_blowup():
    rows = []
    for depth in DEPTHS:
        query = nested_predicate_xpath(depth)
        linear = CoreXPathEvaluator(COMPARISON_DOCUMENT)
        start = time.perf_counter()
        linear_result = linear.evaluate(query)
        linear_time = time.perf_counter() - start

        naive = NaiveXPathEvaluator(COMPARISON_DOCUMENT)
        start = time.perf_counter()
        naive_result = naive.evaluate(query)
        naive_time = time.perf_counter() - start
        assert [n.preorder_index for n in naive_result] == [
            n.preorder_index for n in linear_result
        ]
        rows.append((depth, linear_time, naive_time))
    print("\nE8  Core XPath on 200 nodes: context-set (linear) vs node-at-a-time (naive)")
    print(f"{'depth':>6} {'linear s':>12} {'naive s':>12} {'naive/linear':>14}")
    for depth, linear_time, naive_time in rows:
        ratio = naive_time / linear_time if linear_time else float("inf")
        print(f"{depth:>6} {linear_time:>12.5f} {naive_time:>12.5f} {ratio:>14.1f}")
    # the naive engine must degrade much faster with depth than the linear one
    linear_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    naive_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    assert naive_growth > linear_growth


def test_linear_evaluator_scales_to_large_documents():
    query = nested_predicate_xpath(5)
    start = time.perf_counter()
    CoreXPathEvaluator(LINEAR_DOCUMENT).evaluate(query)
    elapsed = time.perf_counter() - start
    print(f"\nE8b  linear evaluator, 5000 nodes, depth-5 query: {elapsed:.4f} s")
    assert elapsed < 10.0


@pytest.mark.benchmark(group="E8-xpath")
def test_benchmark_linear_core_xpath(benchmark):
    query = nested_predicate_xpath(4)
    evaluator = CoreXPathEvaluator(LINEAR_DOCUMENT)
    benchmark(evaluator.evaluate, query)


@pytest.mark.benchmark(group="E8-xpath")
def test_benchmark_naive_core_xpath_small_depth(benchmark):
    query = nested_predicate_xpath(2)
    evaluator = NaiveXPathEvaluator(COMPARISON_DOCUMENT)
    benchmark(evaluator.evaluate, query)

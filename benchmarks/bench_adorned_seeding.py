"""Cold-start latency of analysis-seeded join planning.

The plan registry seeds every compiled :class:`RulePlan` with join plans
derived from static cardinality estimates (``repro.analysis.cost.
seed_rule_plans``) and records the index advice the engine pre-builds
before a first fixpoint.  The payoff is *first-query* latency: a fresh
engine answering its first query no longer compiles a join plan per (rule,
delta position) bucket — the seeds fill the memo's cold misses.

This benchmark builds a server-style fleet of engines over one shared
registry compilation and measures the summed first-query wall-clock with
seeding on (the default) versus off (``EngineOptions(seed_plans=False)``),
asserts the fixpoints are identical (seeding is a pure strategy change),
and records both timings plus the ``Session.explain`` latency in
BENCH_engine.json.
"""

from __future__ import annotations

import time

from repro import EngineOptions, Session
from repro.analysis.explain import ExplainReport
from repro.datalog import SemiNaiveEngine, parse_program

ENGINES = 50
CHAIN = 30
REPEATS = 3


def _program():
    """A long TMNF-style chain: many rules, so per-rule plan compilation
    dominates a first query over a small database."""
    lines = [
        "p0(X) :- e(X, X).",
        "tc(X, Y) :- e(X, Y).",
        "tc(X, Y) :- e(X, Z), tc(Z, Y).",
    ]
    for i in range(1, CHAIN):
        lines.append(f"p{i}(Y) :- p{i - 1}(X), e(X, Y).")
        lines.append(f"p{i}(Y) :- p{i - 1}(X), f(X, Y).")
    return parse_program("\n".join(lines))


def _database(n: int = 40):
    return {
        "e": {(i, i + 1) for i in range(n)},
        "f": {(i, (i * 7) % n) for i in range(n)},
    }


def _first_query_fleet(program, database, options):
    """(best summed construct+first-evaluate wall-clock, last results) over
    a fleet of engines sharing one registry compilation.  The registry is
    warmed up before timing so neither side pays the one-off compile+seed
    cost inside the loop, and the min over repeats damps scheduler noise."""
    SemiNaiveEngine(program, options=options)  # warm the shared registry
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = [
            SemiNaiveEngine(program, options=options).evaluate(database)
            for _ in range(ENGINES)
        ]
        best = min(best, time.perf_counter() - start)
    return best, results


def test_seeded_first_queries_match_unseeded_fixpoints(bench_record):
    program = _program()
    database = _database()

    seeded_s, seeded_results = _first_query_fleet(
        program, database, EngineOptions()
    )
    unseeded_s, unseeded_results = _first_query_fleet(
        program, database, EngineOptions(seed_plans=False)
    )

    # Correctness guard: seeding never changes a fixpoint.
    assert seeded_results == unseeded_results

    bench_record("adorned_seed_firstquery_seeded_s", seeded_s)
    bench_record("adorned_seed_firstquery_unseeded_s", unseeded_s)
    bench_record("adorned_seed_speedup_x", unseeded_s / max(seeded_s, 1e-9))
    print(
        f"\nfirst queries over {ENGINES} engines: seeded {seeded_s:.4f}s, "
        f"unseeded {unseeded_s:.4f}s "
        f"({unseeded_s / max(seeded_s, 1e-9):.2f}x)"
    )


def test_session_explain_latency_and_determinism(bench_record):
    program = _program()
    text = "\n".join(str(rule) for rule in program.rules)
    session = Session()
    start = time.perf_counter()
    report = session.explain(text)
    elapsed = time.perf_counter() - start
    assert isinstance(report, ExplainReport)
    # Deterministic rendering: a second (cached) call renders identically.
    assert report.render("chain") == session.explain(text).render("chain")
    bench_record("explain_session_s", elapsed)
    print(f"\nSession.explain over {len(program.rules)} rules: {elapsed:.4f}s")

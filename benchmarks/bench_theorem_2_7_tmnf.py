"""Experiment E4 (Theorem 2.7): the TMNF rewriting runs in linear time and
produces linear-size output."""

from __future__ import annotations

import time

import pytest

from repro.mdatalog import MonadicProgram, to_tmnf


def deep_rule_program(path_length: int) -> MonadicProgram:
    """A single rule whose body is a child-path of ``path_length`` atoms."""
    body = ", ".join(f"child(X{i}, X{i + 1})" for i in range(path_length))
    labels = ", ".join(f"label_a(X{i})" for i in range(path_length + 1))
    text = f"deep(X{path_length}) :- {body}, {labels}."
    return MonadicProgram.parse(text)


LENGTHS = (4, 8, 16, 32)


def test_rewriting_output_grows_linearly():
    rows = []
    for length in LENGTHS:
        program = deep_rule_program(length)
        start = time.perf_counter()
        rewritten = to_tmnf(program)
        elapsed = time.perf_counter() - start
        rows.append((program.size(), rewritten.size(), elapsed))
    print("\nE4  Theorem 2.7: TMNF rewriting (input |P| vs output |P'|)")
    print(f"{'|P|':>8} {'|TMNF(P)|':>12} {'seconds':>10} {'ratio':>8}")
    for original, rewritten_size, elapsed in rows:
        print(f"{original:>8} {rewritten_size:>12} {elapsed:>10.5f} {rewritten_size / original:>8.2f}")
    ratios = [rewritten_size / original for original, rewritten_size, _ in rows]
    # linear-size output: the expansion factor stays bounded as |P| grows
    assert max(ratios) < 12
    assert ratios[-1] < ratios[0] * 2


@pytest.mark.benchmark(group="E4-tmnf")
def test_benchmark_tmnf_rewriting(benchmark):
    program = deep_rule_program(24)
    benchmark(to_tmnf, program)

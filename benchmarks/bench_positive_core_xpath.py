"""Experiment E9 (Theorems 4.3/4.4): positive Core XPath.

Negation cannot make the set-at-a-time evaluator slow (it just complements a
node set), but it is what separates LOGCFL from P-hardness in the paper.  The
empirical reproduction compares positive and negated variants of the same
query family and records that both stay cheap for the linear evaluator while
the node-at-a-time baseline pays heavily for negation re-evaluation.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import branching_positive_xpath
from repro.tree import random_tree
from repro.xpath import CoreXPathEvaluator, NaiveXPathEvaluator, is_positive, parse_xpath

DOCUMENT = random_tree(300, labels=("a", "a", "b", "c"), max_children=3, seed=41)


def negated_family(depth: int) -> str:
    inner = "b"
    for _ in range(depth):
        inner = f"a[.//{inner} and not(.//c[.//b])]"
    return "//" + inner


def test_positive_and_negated_families():
    rows = []
    for depth in (1, 2, 3):
        positive_query = branching_positive_xpath(depth)
        negated_query = negated_family(depth)
        assert is_positive(parse_xpath(positive_query))
        assert not is_positive(parse_xpath(negated_query))
        evaluator = CoreXPathEvaluator(DOCUMENT)
        start = time.perf_counter()
        evaluator.evaluate(positive_query)
        positive_time = time.perf_counter() - start
        start = time.perf_counter()
        evaluator.evaluate(negated_query)
        negated_time = time.perf_counter() - start
        rows.append((depth, positive_time, negated_time))
    print("\nE9  positive vs negated Core XPath (context-set evaluator)")
    print(f"{'depth':>6} {'positive s':>12} {'negated s':>12}")
    for depth, positive_time, negated_time in rows:
        print(f"{depth:>6} {positive_time:>12.5f} {negated_time:>12.5f}")
    # both families stay well-behaved for the set-at-a-time algorithm
    assert all(positive < 2 and negated < 2 for _, positive, negated in rows)


@pytest.mark.benchmark(group="E9-positive")
def test_benchmark_positive_core_xpath(benchmark):
    query = branching_positive_xpath(3)
    evaluator = CoreXPathEvaluator(DOCUMENT)
    benchmark(evaluator.evaluate, query)


@pytest.mark.benchmark(group="E9-positive")
def test_benchmark_negated_core_xpath(benchmark):
    query = negated_family(3)
    evaluator = CoreXPathEvaluator(DOCUMENT)
    benchmark(evaluator.evaluate, query)

"""Scale-out workloads: worker processes versus threads on CPU-bound streams.

PR 9's tentpole claim: Python evaluation is GIL-bound, so the thread-pool
batch paths buy little on CPU-bound document streams — worker *processes*
(``workers=`` on the batch APIs, docs/DISTRIB.md) are the first knob that
buys real parallelism.  The workload is the monadic ITALIC selection over
10^4 varied trees (reduced under ``--quick``):

* ``distrib_seq_s`` — the sequential ``query_many`` stream;
* ``distrib_threads_s`` — the same stream on ``max_workers=4`` threads
  (the GIL ceiling being beaten);
* ``distrib_4proc_s`` — four worker processes through the distrib
  subsystem, envelope pickling and per-worker compilation included;
* ``distrib_speedup_vs_threads_x`` — the headline ratio; on a >= 4-core
  machine the full-size run must clear 2x.

All ``distrib_*`` workloads go into BENCH_engine.json under the noisy
prefix list (process scheduling varies across runners).
"""

from __future__ import annotations

import os
import random

from repro import DistribOptions, Session
from repro.mdatalog import MonadicProgram
from repro.tree import tree

DOCUMENTS = 10_000
QUICK_DOCUMENTS = 400
WORKERS = 4

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

LABELS = ("p", "b", "i", "a", "li", "td")

#: Distinct trees in the pool; the stream cycles them round-robin, which
#: defeats the size-8 fixpoint LRU identically in every mode while keeping
#: the resident set small.
POOL = 250


def _spec(rng: random.Random, depth: int):
    label = rng.choice(LABELS)
    if depth == 0:
        return (label,)
    children = tuple(
        _spec(rng, depth - 1) for _ in range(rng.randint(2, 3))
    )
    return (label,) + children


def varied_documents(count: int):
    """``count`` documents cycling a pool of deep varied trees.

    Depth 4-6 with branching 2-3 puts per-document evaluation at ~1-3ms —
    well above the per-envelope pickling cost, so the workload measures
    computation, not serialization.
    """
    rng = random.Random(20260808)
    pool = [
        tree(("doc",) + _spec(rng, rng.randint(4, 6))[1:])
        for _ in range(min(POOL, count))
    ]
    return [pool[i % len(pool)] for i in range(count)]


def selected(results) -> int:
    return sum(len(result.tuples("italic")) for result in results)


def test_processes_beat_threads_on_a_cpu_bound_stream(
    bench_record, best_of, quick
):
    count = QUICK_DOCUMENTS if quick else DOCUMENTS
    documents = varied_documents(count)
    distrib = DistribOptions(workers=WORKERS, start_method="fork")

    seq_s, seq_results = best_of(
        lambda: Session().query_many(ITALIC, documents), repeats=1
    )
    threads_s, thread_results = best_of(
        lambda: Session().query_many(ITALIC, documents, max_workers=WORKERS),
        repeats=1,
    )
    proc_s, proc_results = best_of(
        lambda: Session().query_many(ITALIC, documents, workers=distrib),
        repeats=1,
    )

    # Same answers whichever way the stream ran.
    assert selected(proc_results) == selected(seq_results) == selected(
        thread_results
    )

    speedup = threads_s / proc_s
    bench_record("distrib_seq_s", seq_s)
    bench_record("distrib_threads_s", threads_s)
    bench_record(f"distrib_{WORKERS}proc_s", proc_s)
    bench_record("distrib_speedup_vs_threads_x", speedup)

    print(
        f"\n[distrib] {count} documents: sequential {seq_s:.3f}s, "
        f"{WORKERS} threads {threads_s:.3f}s, {WORKERS} processes "
        f"{proc_s:.3f}s ({speedup:.2f}x vs threads)"
    )

    cores = os.cpu_count() or 1
    if not quick and cores >= 4:
        assert speedup >= 2.0, (
            f"{WORKERS} worker processes only {speedup:.2f}x over threads "
            f"on a {cores}-core machine (expected >= 2x on the CPU-bound "
            "stream)"
        )

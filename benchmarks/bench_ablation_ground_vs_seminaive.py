"""Ablation (DESIGN.md): grounding + LTUR vs generic semi-naive evaluation
for monadic datalog over trees.

The grounding pipeline is what gives Theorem 2.4 its O(|P| * |dom|) bound;
the generic engine is correct but pays join overhead.  The benchmark shows
the speed-up factor on a shared workload.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import scaling_tree, wide_program
from repro.mdatalog import MonadicTreeEvaluator

PROGRAM = wide_program(24)
DOCUMENT = scaling_tree(3_000, seed=91)


def test_ground_pipeline_is_faster_than_generic():
    fast = MonadicTreeEvaluator(PROGRAM)
    slow = MonadicTreeEvaluator(PROGRAM, force_generic=True)
    assert fast.uses_ground_pipeline and not slow.uses_ground_pipeline

    start = time.perf_counter()
    fast_result = fast.evaluate(DOCUMENT)
    fast_time = time.perf_counter() - start
    start = time.perf_counter()
    slow_result = slow.evaluate(DOCUMENT)
    slow_time = time.perf_counter() - start

    for predicate in fast_result:
        assert [n.preorder_index for n in fast_result[predicate]] == [
            n.preorder_index for n in slow_result[predicate]
        ]
    print(
        f"\nAblation  ground+LTUR {fast_time:.4f} s vs semi-naive {slow_time:.4f} s "
        f"(speed-up {slow_time / max(fast_time, 1e-9):.1f}x, 3000 nodes, |P|={PROGRAM.size()})"
    )
    assert fast_time <= slow_time * 1.5  # the ground pipeline should not lose


@pytest.mark.benchmark(group="ablation-evaluation")
def test_benchmark_ground_pipeline(benchmark):
    evaluator = MonadicTreeEvaluator(PROGRAM)
    benchmark(evaluator.evaluate, DOCUMENT)


@pytest.mark.benchmark(group="ablation-evaluation")
def test_benchmark_seminaive_fallback(benchmark):
    evaluator = MonadicTreeEvaluator(PROGRAM, force_generic=True)
    benchmark(evaluator.evaluate, DOCUMENT)

"""Ablation (DESIGN.md): grounding + LTUR vs generic semi-naive evaluation
for monadic datalog over trees.

The grounding pipeline is what gives Theorem 2.4 its O(|P| * |dom|) bound;
the generic engine is correct but pays join overhead.  Since the indexed-join
layer (repro/datalog/index.py), the generic engine's join cost dropped by two
orders of magnitude on this workload — the seed nested-loop strategy is kept
behind ``use_index=False`` as the "before" series, and the benchmark prints
all three evaluation strategies on the shared workload.
"""

from __future__ import annotations

import pytest

from repro.bench import scaling_tree, wide_program
from repro.datalog import SemiNaiveEngine, tree_database
from repro.mdatalog import MonadicTreeEvaluator

PROGRAM = wide_program(24)
DOCUMENT = scaling_tree(3_000, seed=91)


def test_ground_pipeline_is_competitive_with_indexed_generic(best_of):
    fast = MonadicTreeEvaluator(PROGRAM)
    slow = MonadicTreeEvaluator(PROGRAM, force_generic=True)
    assert fast.uses_ground_pipeline and not slow.uses_ground_pipeline

    fast_time, fast_result = best_of(lambda: fast.evaluate(DOCUMENT))
    slow_result = slow.evaluate(DOCUMENT)
    # Time the raw (uncached) engine over a prebuilt EDB so repeats measure
    # pure evaluation, not evaluator construction or the fixpoint cache.
    engine = SemiNaiveEngine(PROGRAM.to_datalog_program())
    database = tree_database(DOCUMENT)
    slow_time, _ = best_of(lambda: engine.evaluate(database))

    for predicate in fast_result:
        assert [n.preorder_index for n in fast_result[predicate]] == [
            n.preorder_index for n in slow_result[predicate]
        ]
    print(
        f"\nAblation  ground+LTUR {fast_time:.4f} s vs indexed semi-naive "
        f"{slow_time:.4f} s "
        f"(ratio {slow_time / max(fast_time, 1e-9):.2f}x, 3000 nodes, |P|={PROGRAM.size()})"
    )
    # The indexed generic engine now rivals the ground pipeline on this
    # workload; the linear pipeline must stay in the same league (it wins
    # asymptotically on larger |P| * |dom|).
    assert fast_time <= slow_time * 5


def test_indexed_join_strictly_faster_than_seed_nested_loop(quick, best_of):
    """Before/after for the indexed-join layer on the ablation workload."""
    document = scaling_tree(800, seed=91) if quick else DOCUMENT
    database = tree_database(document)
    datalog_program = PROGRAM.to_datalog_program()
    indexed_engine = SemiNaiveEngine(datalog_program, use_index=True)
    seed_engine = SemiNaiveEngine(datalog_program, use_index=False)

    # Raw uncached engines over a prebuilt EDB, so repeats measure pure
    # evaluation.  The nested loop is orders of magnitude slower, so a
    # single run keeps the benchmark bounded and noise can only inflate it,
    # never flip the assertion.
    indexed_time, indexed_result = best_of(lambda: indexed_engine.evaluate(database))
    seed_time, seed_result = best_of(
        lambda: seed_engine.evaluate(database), repeats=1
    )

    assert indexed_result == seed_result
    print(
        f"\nAblation  indexed join {indexed_time:.4f} s vs seed nested-loop "
        f"{seed_time:.4f} s "
        f"(speed-up {seed_time / max(indexed_time, 1e-9):.1f}x, "
        f"{len(document)} nodes, |P|={PROGRAM.size()})"
    )
    assert indexed_time < seed_time


@pytest.mark.benchmark(group="ablation-evaluation")
def test_benchmark_ground_pipeline(benchmark):
    evaluator = MonadicTreeEvaluator(PROGRAM)
    benchmark(evaluator.evaluate, DOCUMENT)


@pytest.mark.benchmark(group="ablation-evaluation")
def test_benchmark_seminaive_fallback(benchmark):
    # Raw engine: evaluator.evaluate would hit the content-keyed fixpoint
    # cache on every round after the first and measure only the EDB rebuild.
    engine = SemiNaiveEngine(PROGRAM.to_datalog_program())
    database = tree_database(DOCUMENT)
    benchmark(engine.evaluate, database)

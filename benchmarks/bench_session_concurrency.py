"""Concurrent-session workloads: shared-Session storms and batch overlap.

PR 5 makes one :class:`repro.api.Session` servable from a multi-threaded
front end (locked caches, single-flight memos) and gives the batch entry
points ``max_workers=`` thread-pool paths.  Two workload families go into
``BENCH_engine.json``:

* ``session_concurrency_*`` — N request threads hammering one shared
  session over a hot document rotation, versus the same total work
  sequentially.  This is the tentpole's *correctness-under-load* workload;
  the timings are recorded to track that locking stays cheap (Python
  evaluation is GIL-bound, so threads buy little — the point is they must
  not *cost* much either).
* ``extract_many_parallel_*`` — the fetch-bound ``urls=`` batch path: a
  latency-simulating fetcher makes acquisition dominate, and the
  async-capable fetcher protocol overlaps fetching with evaluation, so
  ``max_workers=8`` must beat the sequential stream decisively.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro import Session
from repro.html import parse_html
from repro.mdatalog import MonadicProgram
from repro.tree.builder import tree
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import generate_books, table_shop_page

THREADS = 8

ITALIC = MonadicProgram.parse(
    """
    italic(X) :- label_i(X).
    italic(X) :- italic(X0), firstchild(X0, X).
    italic(X) :- italic(X0), nextsibling(X0, X).
    """,
    query_predicates=["italic"],
)

WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


class SlowFetcher(SimulatedWeb):
    """A simulated web whose every fetch pays a network-style latency.

    The sleep releases the GIL exactly like socket I/O would, so this is
    the honest model for the fetch-bound workload the parallel ``urls=``
    path exists for.
    """

    def __init__(self, delay_s: float) -> None:
        super().__init__()
        self.delay_s = delay_s

    def fetch(self, url: str):
        time.sleep(self.delay_s)
        return super().fetch(url)


def _documents(count: int):
    return [
        tree(("doc", ("i", ("b",)), ("a",), ("i",) * (1 + seed % 3)))
        for seed in range(count)
    ]


def test_shared_session_storm_records_thread_vs_sequential(
    best_of, bench_record, quick
):
    """N threads × hot-document queries on one session vs the same work
    sequentially — and the results must agree exactly."""
    rounds = 8 if quick else 24
    documents = _documents(6)

    def sequential():
        session = Session()
        return [
            [node.preorder_index for node in session.query(ITALIC, document).nodes("italic")]
            for _ in range(THREADS * rounds)
            for document in documents
        ]

    def threaded():
        session = Session()
        collected = [None] * THREADS
        barrier = threading.Barrier(THREADS)

        def work(index: int) -> None:
            barrier.wait(timeout=30)
            collected[index] = [
                [
                    node.preorder_index
                    for node in session.query(ITALIC, document).nodes("italic")
                ]
                for _ in range(rounds)
                for document in documents
            ]

        threads = [
            threading.Thread(target=work, args=(index,), daemon=True)
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)
        return collected

    sequential_samples = []
    threaded_samples = []
    expected = None
    storm = None
    for _ in range(3):
        seconds, expected = best_of(sequential, repeats=1)
        sequential_samples.append(seconds)
        seconds, storm = best_of(threaded, repeats=1)
        threaded_samples.append(seconds)

    # Correctness guard: every thread saw exactly the sequential answers.
    per_thread = expected[: rounds * len(_documents(6))]
    assert all(rows == per_thread for rows in storm)

    bench_record("session_concurrency_sequential_s", statistics.median(sequential_samples))
    bench_record("session_concurrency_threads_s", statistics.median(threaded_samples))
    print(
        f"\nshared-session storm ({THREADS} threads x {rounds} rounds x 6 docs): "
        f"sequential {min(sequential_samples):.4f} s, "
        f"threaded {min(threaded_samples):.4f} s "
        "(GIL-bound: parity expected, corruption forbidden)"
    )


def test_extract_many_parallel_beats_sequential_on_fetch_bound_urls(
    best_of, bench_record, quick
):
    url_count = 12 if quick else 24
    delay_s = 0.004 if quick else 0.008
    web = SlowFetcher(delay_s)
    for seed in range(url_count):
        web.publish(
            f"shop-{seed}.test/bestsellers",
            table_shop_page(generate_books(6, seed=seed)),
        )
    urls = [f"shop-{seed}.test/bestsellers" for seed in range(url_count)]

    def sequential():
        return Session().extract_many(WRAPPER, urls=urls, fetcher=web)

    def parallel():
        return Session().extract_many(WRAPPER, urls=urls, fetcher=web, max_workers=8)

    sequential_samples = []
    parallel_samples = []
    results = baseline = None
    for _ in range(3):
        seconds, baseline = best_of(sequential, repeats=1)
        sequential_samples.append(seconds)
        seconds, results = best_of(parallel, repeats=1)
        parallel_samples.append(seconds)

    # Correctness guard: overlapped fetching changes nothing about output.
    assert [result.to_xml() for result in results] == [
        result.to_xml() for result in baseline
    ]
    assert all(result.count("book") == 6 for result in results)

    speedup = min(sequential_samples) / max(min(parallel_samples), 1e-9)
    bench_record("extract_many_parallel_seq_s", statistics.median(sequential_samples))
    bench_record("extract_many_parallel_s", statistics.median(parallel_samples))
    bench_record("extract_many_parallel_speedup_x", speedup)
    print(
        f"\nextract_many over {url_count} fetch-bound urls "
        f"({delay_s * 1000:.0f} ms latency): sequential "
        f"{min(sequential_samples):.4f} s vs max_workers=8 "
        f"{min(parallel_samples):.4f} s (speed-up {speedup:.1f}x)"
    )
    # Fetch latency dominates and overlaps across 8 workers; anything less
    # than a clear win means the async fetcher path stopped overlapping.
    assert speedup >= 1.5


def test_html_parse_stream_is_identical_across_batch_paths():
    """The parallel path hands extraction the same parsed documents."""
    web = SimulatedWeb()
    web.publish("shop-0.test/bestsellers", table_shop_page(generate_books(4, seed=0)))
    parsed = parse_html(web.fetch_html("shop-0.test/bestsellers"))
    assert parsed.root.label == web.fetch("shop-0.test/bestsellers").root.label

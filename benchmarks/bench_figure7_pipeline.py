"""Experiment E13 (Figure 7): the books information pipeline.

Three heterogeneous book sources are wrapped, integrated, filtered and sorted
by the Transformation Server; the benchmark reports end-to-end pipeline
latency and checks the integrated record counts.
"""

from __future__ import annotations

import time

import pytest

from repro.elog import parse_elog
from repro.server import (
    InformationPipe,
    IntegrationComponent,
    SortComponent,
    WrapperComponent,
    XmlDeliverer,
)
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

BOOKS_PER_SHOP = 8

SHOP_A_WRAPPER = parse_elog(
    """
    book(S, X)   <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
    title(S, X)  <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
    price(S, X)  <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
    """
)
SHOP_B_WRAPPER = parse_elog(
    """
    book(S, X)   <- document(_, S), subelem(S, ?.li, X)
    title(S, X)  <- book(_, S), subelem(S, (?.span, [(class, title, exact)]), X)
    price(S, X)  <- book(_, S), subelem(S, (?.span, [(class, price, exact)]), X)
    """
)
SHOP_C_WRAPPER = parse_elog(
    """
    book(S, X)   <- document(_, S), subelem(S, (?.div, [(class, entry, exact)]), X)
    title(S, X)  <- book(_, S), subelem(S, (?.div, [(class, t, exact)]), X)
    price(S, X)  <- book(_, S), subelem(S, (?.div, [(class, p, exact)]), X)
    """
)


def build_pipe() -> InformationPipe:
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=BOOKS_PER_SHOP, seed=3))
    pipe = InformationPipe("books")
    pipe.add(WrapperComponent("shop_a", SHOP_A_WRAPPER, web, "books-a.test/bestsellers"))
    pipe.add(WrapperComponent("shop_b", SHOP_B_WRAPPER, web, "books-b.test/chart"))
    pipe.add(WrapperComponent("shop_c", SHOP_C_WRAPPER, web, "books-c.test/picks"))
    pipe.add(IntegrationComponent("integrate", root_name="allbooks"))
    pipe.add(SortComponent("by_price", "book", "price", root_name="offers"))
    pipe.add(XmlDeliverer("deliver"))
    for shop in ("shop_a", "shop_b", "shop_c"):
        pipe.connect(shop, "integrate")
    pipe.chain("integrate", "by_price", "deliver")
    return pipe


def test_pipeline_integrates_all_sources():
    pipe = build_pipe()
    start = time.perf_counter()
    results = pipe.run()
    elapsed = time.perf_counter() - start
    offers = results["by_price"].find_all("book")
    assert len(offers) == 3 * BOOKS_PER_SHOP
    prices = [offer.findtext("price") for offer in offers]
    assert all(prices)
    print(f"\nE13  Figure 7 pipeline: {len(offers)} integrated offers from 3 sources "
          f"in {elapsed:.3f} s")


@pytest.mark.benchmark(group="E13-pipeline")
def test_benchmark_books_pipeline(benchmark):
    pipe = build_pipe()
    benchmark(pipe.run)

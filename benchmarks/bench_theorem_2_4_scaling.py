"""Experiment E3 (Theorem 2.4): monadic datalog over trees scales as
O(|P| * |dom|).

The benchmark measures the grounding+LTUR evaluator on documents and programs
of increasing size and prints the time normalised by |P| * |dom|: the
normalised column staying (roughly) flat is the empirical counterpart of the
theorem.  The ablation against the generic semi-naive engine is in
``bench_ablation_ground_vs_seminaive.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import chain_program, scaling_tree, wide_program
from repro.mdatalog import MonadicTreeEvaluator

DOCUMENT_SIZES = (1_000, 4_000, 16_000)
PROGRAM_SIZES = (8, 32, 128)


def _measure(program, document):
    evaluator = MonadicTreeEvaluator(program)
    start = time.perf_counter()
    evaluator.evaluate(document)
    return time.perf_counter() - start


def test_scaling_in_document_size_is_linear():
    program = chain_program(16)
    rows = []
    for size in DOCUMENT_SIZES:
        document = scaling_tree(size, seed=1)
        elapsed = _measure(program, document)
        rows.append((size, elapsed, elapsed / (program.size() * size)))
    print("\nE3a  |dom| scaling (|P| fixed at %d atoms)" % chain_program(16).size())
    print(f"{'|dom|':>8} {'seconds':>10} {'sec/(|P|*|dom|)':>18}")
    for size, elapsed, normalised in rows:
        print(f"{size:>8} {elapsed:>10.4f} {normalised:>18.3e}")
    # linearity check: 16x the document should cost well under 64x the time
    assert rows[-1][1] < rows[0][1] * 64


def test_scaling_in_program_size_is_linear():
    document = scaling_tree(4_000, seed=2)
    rows = []
    for rule_count in PROGRAM_SIZES:
        program = wide_program(rule_count)
        elapsed = _measure(program, document)
        rows.append((program.size(), elapsed, elapsed / (program.size() * len(document))))
    print("\nE3b  |P| scaling (|dom| fixed at 4000 nodes)")
    print(f"{'|P|':>8} {'seconds':>10} {'sec/(|P|*|dom|)':>18}")
    for size, elapsed, normalised in rows:
        print(f"{size:>8} {elapsed:>10.4f} {normalised:>18.3e}")
    assert rows[-1][1] < rows[0][1] * (PROGRAM_SIZES[-1] / PROGRAM_SIZES[0]) * 4


@pytest.mark.benchmark(group="E3-theorem-2.4")
def test_benchmark_monadic_datalog_medium(benchmark):
    program = chain_program(32)
    document = scaling_tree(8_000, seed=3)
    evaluator = MonadicTreeEvaluator(program)
    benchmark(evaluator.evaluate, document)

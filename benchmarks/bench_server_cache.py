"""Fixpoint-LRU effectiveness under the multi-document server workload.

The Transformation Server re-runs wrappers against every freshly scheduled
document; PR 1's single-slot fixpoint cache thrashed as soon as a pipe
rotated through more than one hot document.  This benchmark drives a
:class:`repro.server.components.DatalogQueryComponent` through a
:class:`repro.server.pipeline.TransformationServer` over a 4-document
working set and asserts the LRU serves >= 90% of activations from cache,
recording the hit rate and the cached-vs-thrashing wall-clock into
BENCH_engine.json.
"""

from __future__ import annotations

import time

from repro.bench import scaling_tree, wide_program
from repro.server import DatalogQueryComponent, InformationPipe, TransformationServer

WORKING_SET = 4


def _working_set_documents(size):
    return [scaling_tree(size, seed=100 + offset) for offset in range(WORKING_SET)]


def _build_server(documents, cache_size, rotation):
    program = wide_program(12)
    server = TransformationServer()
    pipe = InformationPipe("wrappers")
    component = DatalogQueryComponent(
        "wrap",
        program,
        supplier=lambda: documents[rotation["tick"] % len(documents)],
        cache_size=cache_size,
        force_generic=True,  # exercise the generic engine's fixpoint LRU
    )
    pipe.add(component)
    server.register(pipe, period=1)
    return server, component


def test_fixpoint_lru_hit_rate_over_document_working_set(quick, bench_record):
    size = 150 if quick else 600
    documents = _working_set_documents(size)
    activations = 40

    def run_rotation(cache_size):
        # A fresh server per repeat: the measured workload is always "cold
        # caches, then 40 activations", not a re-timing of a warm cache.
        rotation = {"tick": 0}
        server, component = _build_server(
            documents, cache_size=cache_size, rotation=rotation
        )
        start = time.perf_counter()
        for _ in range(activations):
            server.tick()
            rotation["tick"] += 1
        return time.perf_counter() - start, component.cache_info()

    # Best-of-3: the recorded trajectory value feeds the CI perf gate, and a
    # single unrepeated pass swings far beyond the gate's threshold on
    # loaded runners (the min damps scheduler/GC noise).
    cached_elapsed, info = min(run_rotation(cache_size=8) for _ in range(3))
    assert info.hits + info.misses == activations
    assert info.misses == WORKING_SET  # each document evaluated exactly once
    hit_rate = info.hit_rate
    bench_record("server_pipeline_4doc_hit_rate", hit_rate)
    bench_record("server_pipeline_4doc_cached_s", cached_elapsed)

    # The PR-1 behaviour for comparison: a single-slot cache thrashes on the
    # same rotation and re-evaluates every activation.
    thrash_elapsed, thrash_info = min(run_rotation(cache_size=1) for _ in range(2))
    bench_record("server_pipeline_4doc_singleslot_s", thrash_elapsed)

    print(
        f"\nserver working set ({WORKING_SET} documents, {activations} activations): "
        f"LRU hit rate {hit_rate:.1%} ({cached_elapsed:.3f} s) vs single-slot "
        f"hit rate {thrash_info.hit_rate:.1%} ({thrash_elapsed:.3f} s)"
    )
    assert hit_rate >= 0.9
    assert thrash_info.hits == 0  # the single slot never serves this rotation
    assert cached_elapsed < thrash_elapsed


def test_ground_pipeline_lru_hits_across_rebuilt_documents(quick, bench_record):
    # The TMNF/ground pipeline caches LTUR truth sets by tree fingerprint:
    # wrappers re-fetching byte-identical pages (distinct Document objects)
    # must hit without re-grounding.
    size = 150 if quick else 600
    program = wide_program(12)
    rotation = {"tick": 0}
    documents = _working_set_documents(size)
    rebuilt = [scaling_tree(size, seed=100 + offset) for offset in range(WORKING_SET)]
    component = DatalogQueryComponent(
        "wrap",
        program,
        supplier=lambda: (documents + rebuilt)[rotation["tick"] % (2 * WORKING_SET)],
        cache_size=8,
    )
    for _ in range(2 * WORKING_SET):
        component.process([])
        rotation["tick"] += 1
    info = component.cache_info()
    assert info.misses == WORKING_SET  # rebuilt duplicates all hit
    assert info.hits == WORKING_SET
    bench_record("server_ground_pipeline_rebuilt_hit_rate", info.hit_rate)
    print(f"\nground pipeline rebuilt-document hit rate: {info.hit_rate:.1%}")

"""Experiment E12 (Figure 6): the complexity / expressiveness landscape.

Figure 6 relates the query languages studied in the paper by expressive power
(arrows = translations) and complexity class.  The benchmark regenerates the
*executable* part of that figure: for one shared document it runs equivalent
queries in every formalism implemented here and prints a runtime matrix, plus
it re-checks the translation arrows (Core XPath -> TMNF, CQ -> positive Core
XPath, automata -> monadic datalog) on that document.
"""

from __future__ import annotations

import time

import pytest

from repro.automata import compile_automaton, leaf_selector_automaton
from repro.bench import scaling_tree
from repro.cq import query as cq_query, to_positive_core_xpath, unary_answers
from repro.mdatalog import MonadicProgram, MonadicTreeEvaluator
from repro.xpath import CoreXPathEvaluator, FullXPathEvaluator, NaiveXPathEvaluator, translate_to_tmnf

LABELS = ("a", "b", "c", "d")
DOCUMENT = scaling_tree(2_000, seed=51, labels=LABELS)

# One query, many formalisms: "b-labelled nodes with an a-labelled ancestor".
XPATH_QUERY = "//a//b"
CQ_QUERY = cq_query(free=["X"], labels=[("X", "b"), ("A", "a")], axes=[("child+", "A", "X")])
MDATALOG_PROGRAM = MonadicProgram.parse(
    """
    below_a(X) :- label_a(X0), child(X0, X).
    below_a(X) :- below_a(X0), child(X0, X).
    answer(X) :- below_a(X), label_b(X).
    """,
    query_predicates=["answer"],
)


def _answers_xpath(evaluator_class):
    return {
        node.preorder_index for node in evaluator_class(DOCUMENT).evaluate(XPATH_QUERY)
    }


def test_all_formalisms_agree_and_runtime_matrix():
    timings = {}
    start = time.perf_counter()
    core = _answers_xpath(CoreXPathEvaluator)
    timings["Core XPath (linear)"] = time.perf_counter() - start

    start = time.perf_counter()
    full = _answers_xpath(FullXPathEvaluator)
    timings["XPath (DP / memoised)"] = time.perf_counter() - start

    start = time.perf_counter()
    naive = _answers_xpath(NaiveXPathEvaluator)
    timings["naive XPath (2002 engines)"] = time.perf_counter() - start

    start = time.perf_counter()
    mdatalog = {
        node.preorder_index
        for node in MonadicTreeEvaluator(MDATALOG_PROGRAM).select(DOCUMENT, "answer")
    }
    timings["monadic datalog (TMNF pipeline)"] = time.perf_counter() - start

    start = time.perf_counter()
    cq = {node.preorder_index for node in unary_answers(CQ_QUERY, DOCUMENT)}
    timings["conjunctive query (filtered join)"] = time.perf_counter() - start

    assert core == full == naive == mdatalog == cq

    # translation arrows of Figure 6
    start = time.perf_counter()
    tmnf = translate_to_tmnf(XPATH_QUERY, labels=LABELS)
    translated = {
        node.preorder_index for node in MonadicTreeEvaluator(tmnf).select(DOCUMENT, "answer")
    }
    timings["Core XPath -> TMNF -> evaluate"] = time.perf_counter() - start
    assert translated == core

    start = time.perf_counter()
    cq_as_xpath = to_positive_core_xpath(CQ_QUERY)
    via_xpath = {
        node.preorder_index for node in CoreXPathEvaluator(DOCUMENT).evaluate(cq_as_xpath)
    }
    timings["CQ -> positive Core XPath -> evaluate"] = time.perf_counter() - start
    assert via_xpath == core

    automaton = leaf_selector_automaton(LABELS)
    program = compile_automaton(automaton, LABELS)
    start = time.perf_counter()
    by_program = {
        node.preorder_index
        for node in MonadicTreeEvaluator(program).select(DOCUMENT, "selected")
    }
    timings["tree automaton -> monadic datalog"] = time.perf_counter() - start
    assert by_program == {node.preorder_index for node in automaton.select(DOCUMENT)}

    print("\nE12  Figure 6 landscape: one query, all formalisms (2000-node document)")
    width = max(len(name) for name in timings) + 2
    for name, seconds in timings.items():
        print(f"  {name:<{width}} {seconds:>9.4f} s")
    print(f"  answers: {len(core)} nodes selected by every formalism")


@pytest.mark.benchmark(group="E12-landscape")
def test_benchmark_core_xpath_on_landscape_query(benchmark):
    evaluator = CoreXPathEvaluator(DOCUMENT)
    benchmark(evaluator.evaluate, XPATH_QUERY)


@pytest.mark.benchmark(group="E12-landscape")
def test_benchmark_mdatalog_on_landscape_query(benchmark):
    evaluator = MonadicTreeEvaluator(MDATALOG_PROGRAM)
    benchmark(evaluator.evaluate, DOCUMENT)

"""Resilience-layer overhead: the clean path must stay (nearly) free.

The fault-tolerance layer (retry loop, per-host circuit breaker, session
stats) sits on every fetch a policy-carrying :class:`repro.api.Session`
performs.  Its contract is that a batch which never faults pays almost
nothing for the armour: the ``on_error="raise"`` batch paths are the
pre-resilience code verbatim, and the guarded fetch adds only a breaker
check and a loop frame per document.  Two workloads go into
``BENCH_engine.json``:

* ``resilience_clean_*`` — the same clean ``extract_many`` stream with and
  without a policy; the recorded overhead ratio is asserted below 5%.
* ``resilience_storm_recovered_s`` — the same stream under a seeded 20%
  fail-once storm with zero-backoff retries: the price of absorbing a
  storm is re-fetching the flaky fifth, not a collapsed batch.
"""

from __future__ import annotations

import statistics

from repro import ResiliencePolicy, Session
from repro.resilience import FaultPlan, RetryPolicy
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import generate_books, table_shop_page

#: Zero-backoff so the storm workload measures retry mechanics, not sleeps.
POLICY = ResiliencePolicy(
    retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)
)

WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


def _web_and_urls(count):
    web = SimulatedWeb()
    urls = []
    for seed in range(count):
        url = f"shop-{seed}.test/bestsellers"
        web.publish(url, table_shop_page(generate_books(5, seed=seed)))
        urls.append(url)
    return web, urls


def test_clean_path_overhead_stays_under_five_percent(best_of, bench_record, quick):
    url_count = 40 if quick else 120
    web, urls = _web_and_urls(url_count)

    def bare():
        return Session().extract_many(WRAPPER, urls=urls, fetcher=web)

    def guarded():
        return Session(resilience=POLICY).extract_many(
            WRAPPER, urls=urls, fetcher=web
        )

    bare_samples, guarded_samples = [], []
    baseline = armoured = None
    for _ in range(5):
        seconds, baseline = best_of(bare, repeats=1)
        bare_samples.append(seconds)
        seconds, armoured = best_of(guarded, repeats=1)
        guarded_samples.append(seconds)

    # Correctness guard: the armour changes nothing about a clean run.
    assert [r.to_xml() for r in armoured] == [r.to_xml() for r in baseline]

    overhead = min(guarded_samples) / max(min(bare_samples), 1e-9)
    bench_record("resilience_clean_baseline_s", statistics.median(bare_samples))
    bench_record("resilience_clean_guarded_s", statistics.median(guarded_samples))
    bench_record("resilience_clean_overhead_x", overhead)
    print(
        f"\nclean extract_many over {url_count} urls: bare "
        f"{min(bare_samples):.4f} s vs resilient {min(guarded_samples):.4f} s "
        f"(overhead {overhead:.3f}x)"
    )
    assert overhead < 1.05, (
        f"clean-path resilience overhead {overhead:.3f}x exceeds the 5% budget"
    )


def test_storm_recovery_price_is_the_refetched_fifth(best_of, bench_record, quick):
    url_count = 40 if quick else 120
    web, urls = _web_and_urls(url_count)
    session = Session(resilience=POLICY)
    clean = session.extract_many(WRAPPER, urls=urls, fetcher=web)

    def stormed():
        storm_web, _ = _web_and_urls(url_count)
        plan = FaultPlan(seed=11)
        for url in urls[:: 5]:  # a deterministic 20% fail-once storm
            plan.fail_transient(url, times=1)
        storm_web.install_faults(plan)
        return Session(resilience=POLICY).extract_many(
            WRAPPER, urls=urls, fetcher=storm_web
        )

    samples = []
    recovered = None
    for _ in range(3):
        seconds, recovered = best_of(stormed, repeats=1)
        samples.append(seconds)

    # Every injected fault was absorbed: the stormed batch equals the clean.
    assert [r.to_xml() for r in recovered] == [r.to_xml() for r in clean]

    bench_record("resilience_storm_recovered_s", statistics.median(samples))
    print(
        f"\n20% fail-once storm over {url_count} urls absorbed in "
        f"{min(samples):.4f} s (zero-backoff retries; no slot lost)"
    )

"""Indexed vs nested-loop joins in the generic semi-naive engine.

The seed engine matched every body literal by scanning the whole relation
per partial substitution; the index layer (repro/datalog/index.py) probes a
hash index on the currently-bound argument positions instead and greedily
reorders body literals by selectivity.  This benchmark quantifies the gap on
(a) the tree workload the ablation uses and (b) a classic transitive-closure
program, and asserts the indexed join is strictly faster — the seed's
nested-loop behaviour is preserved behind ``use_index=False``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import scaling_tree, wide_program
from repro.datalog import SemiNaiveEngine, parse_program, tree_database

TC_PROGRAM_TEXT = """
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


def _chain_edges(length):
    return {"edge": {(i, i + 1) for i in range(length)}}


def _tree_workload(size):
    program = wide_program(24).to_datalog_program()
    database = tree_database(scaling_tree(size, seed=91))
    return program, database


def test_indexed_join_beats_nested_loop_on_tree_workload(quick, best_of, bench_record):
    size = 800 if quick else 3_000
    program, database = _tree_workload(size)
    indexed_engine = SemiNaiveEngine(program, use_index=True)  # planned + indexed
    nested_engine = SemiNaiveEngine(program, use_index=False)

    indexed_time, indexed_result = best_of(lambda: indexed_engine.evaluate(database))
    nested_time, nested_result = best_of(
        lambda: nested_engine.evaluate(database), repeats=1
    )

    assert indexed_result == nested_result
    bench_record(f"tree_wide_{size}_planned_s", indexed_time)
    bench_record(f"tree_wide_{size}_nested_loop_s", nested_time)
    print(
        f"\nIndexed join  {indexed_time:.4f} s vs nested-loop {nested_time:.4f} s "
        f"(speed-up {nested_time / max(indexed_time, 1e-9):.1f}x, {size} nodes, "
        f"|P|={program.size()})"
    )
    assert indexed_time < nested_time


def test_indexed_join_beats_nested_loop_on_transitive_closure(
    quick, best_of, bench_record
):
    length = 60 if quick else 150
    program = parse_program(TC_PROGRAM_TEXT)
    database = _chain_edges(length)
    indexed_engine = SemiNaiveEngine(program, use_index=True)  # planned + indexed
    nested_engine = SemiNaiveEngine(program, use_index=False)

    indexed_time, indexed_result = best_of(lambda: indexed_engine.evaluate(database))
    nested_time, nested_result = best_of(
        lambda: nested_engine.evaluate(database), repeats=1
    )

    assert indexed_result == nested_result
    expected_pairs = length * (length + 1) // 2
    assert len(indexed_result["reach"]) == expected_pairs
    bench_record(f"tc_chain_{length}_planned_s", indexed_time)
    bench_record(f"tc_chain_{length}_nested_loop_s", nested_time)
    print(
        f"\nTransitive closure (chain {length})  indexed {indexed_time:.4f} s vs "
        f"nested-loop {nested_time:.4f} s "
        f"(speed-up {nested_time / max(indexed_time, 1e-9):.1f}x)"
    )
    assert indexed_time < nested_time


def test_query_cache_avoids_recomputation(quick):
    size = 800 if quick else 3_000
    program, database = _tree_workload(size)
    engine = SemiNaiveEngine(program)

    start = time.perf_counter()
    first = engine.query(database, "hit")
    cold = time.perf_counter() - start
    start = time.perf_counter()
    second = engine.query(database, "hit")
    warm = time.perf_counter() - start

    assert first == second
    print(f"\nQuery cache  cold {cold:.4f} s vs warm {warm:.6f} s")
    assert warm < cold


@pytest.mark.benchmark(group="indexed-join")
def test_benchmark_indexed_join(benchmark):
    program, database = _tree_workload(1_000)
    engine = SemiNaiveEngine(program, use_index=True)
    benchmark(engine.evaluate, database)


@pytest.mark.benchmark(group="indexed-join")
def test_benchmark_nested_loop_join(benchmark):
    program, database = _tree_workload(1_000)
    engine = SemiNaiveEngine(program, use_index=False)
    benchmark(engine.evaluate, database)

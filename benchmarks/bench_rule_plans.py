"""Compile-once rule plans vs the PR-1 per-call indexed join.

The PR-1 engine re-derived its join strategy on every ``_join`` call and
allocated a fresh delta database per semi-naive iteration; the plan layer
(repro/datalog/plan.py) compiles each rule once, memoises join orders per
size bucket, interprets slot-based rows instead of substitution dicts, and
recycles delta storage with batched index updates.  These benchmarks
quantify the gap on the ROADMAP's wider, non-tree workloads — deep-recursion
graph reachability at 10^5+ edges and the classic same-generation program —
and assert the planned engine is at least twice as fast on the
deep-recursion shapes.  Headline numbers land in BENCH_engine.json.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from repro.datalog import EngineOptions, SemiNaiveEngine, parse_program

REACH_PROGRAM_TEXT = """
reach(Y) :- source(X), edge(X, Y).
reach(Y) :- reach(X), edge(X, Y).
"""

SG_PROGRAM_TEXT = """
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).
"""

TRIANGLE_PROGRAM_TEXT = """
triangle(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(X, Z).
"""


def _chain_reach_workload(length):
    """Single-source reachability over a chain: one new fact per iteration —
    the purest deep-recursion / allocator-pressure shape."""
    program = parse_program(REACH_PROGRAM_TEXT)
    database = {"edge": {(i, i + 1) for i in range(length)}, "source": {(0,)}}
    return program, database


def _random_reach_workload(edge_count, seed=7):
    """Reachability over a 90%-chain / 10%-random graph at ``edge_count``
    edges: still recursion-deep, with wider deltas."""
    chain_length = (edge_count * 9) // 10
    node_count = edge_count + edge_count // 5
    rng = random.Random(seed)
    edges = {(i, i + 1) for i in range(chain_length)}
    while len(edges) < edge_count:
        edges.add((rng.randrange(node_count), rng.randrange(node_count)))
    program = parse_program(REACH_PROGRAM_TEXT)
    return program, {"edge": edges, "source": {(0,)}}


def _same_generation_workload(depth):
    """sg over a balanced binary tree of the given depth (non-tree-shaped
    IDB: sg is binary and quadratic in the leaves)."""
    parent = set()
    sibling = set()
    nodes = [0]
    next_id = 1
    for _ in range(depth):
        grown = []
        for node in nodes:
            left, right = next_id, next_id + 1
            next_id += 2
            parent.add((left, node))
            parent.add((right, node))
            sibling.add((left, right))
            grown.extend((left, right))
        nodes = grown
    program = parse_program(SG_PROGRAM_TEXT)
    return program, {"parent": parent, "sibling": sibling}


def _samples(run, repeats=3):
    """All wall-clock samples plus the last result (min for assertions,
    median for the recorded trajectory — same sample set for both engines,
    so neither side is systematically noisier)."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - start)
    return times, result


def _compare(program, database, bench_record, name, min_speedup):
    planned_engine = SemiNaiveEngine(program)
    legacy_engine = SemiNaiveEngine(program, use_plans=False)
    planned_times, planned_result = _samples(lambda: planned_engine.evaluate(database))
    legacy_times, legacy_result = _samples(lambda: legacy_engine.evaluate(database))
    assert planned_result == legacy_result
    # min-vs-min for the assertion (scheduler noise damped on both sides),
    # median-vs-median for the recorded numbers.
    speedup = min(legacy_times) / max(min(planned_times), 1e-9)
    bench_record(f"{name}_planned_s", statistics.median(planned_times))
    bench_record(f"{name}_pr1_indexed_s", statistics.median(legacy_times))
    bench_record(f"{name}_speedup_x", speedup)
    print(
        f"\n{name}: planned {min(planned_times):.4f} s vs "
        f"PR-1 indexed {min(legacy_times):.4f} s (speed-up {speedup:.1f}x)"
    )
    assert speedup >= min_speedup
    return planned_result


def test_planned_beats_pr1_on_deep_chain_reachability(quick, bench_record):
    length = 20_000 if quick else 100_000
    program, database = _chain_reach_workload(length)
    result = _compare(
        program, database, bench_record, f"reach_chain_{length}", min_speedup=2.0
    )
    assert len(result["reach"]) == length


def test_planned_beats_pr1_on_same_generation(quick, bench_record):
    depth = 6 if quick else 8
    program, database = _same_generation_workload(depth)
    result = _compare(
        program,
        database,
        bench_record,
        f"same_generation_depth_{depth}",
        min_speedup=2.0,
    )
    assert result["sg"]  # sanity: the recursion actually fired


def test_planned_beats_pr1_on_random_graph_reachability(quick, bench_record):
    edge_count = 20_000 if quick else 100_000
    program, database = _random_reach_workload(edge_count)
    # Wider deltas dilute the per-iteration overhead the plans remove, so
    # the floor is lower here; the recorded number tracks the trajectory.
    result = _compare(
        program, database, bench_record, f"reach_random_{edge_count}", min_speedup=1.3
    )
    assert len(result["reach"]) > edge_count // 2


def _triangle_workload(node_count, edge_count, seed=11):
    """Triangle enumeration over a random digraph: the closing literal
    ``edge(X, Z)`` is probed with *both* positions bound — the workload
    where ``index_keys="full"`` (one composite hash probe) and
    ``index_keys="prefix"`` (posting-set intersection) actually diverge."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < edge_count:
        a, b = rng.randrange(node_count), rng.randrange(node_count)
        if a != b:
            edges.add((a, b))
    return parse_program(TRIANGLE_PROGRAM_TEXT), {"edge": edges}


def test_index_key_full_vs_prefix_tuning(quick, bench_record):
    """Index-key tuning study: composite full-key indexes vs per-column
    posting prefixes on multi-bound probes.

    Records ``index_key_full_s`` / ``index_key_prefix_s`` and their ratio.
    The study backs the ``EngineOptions(index_keys="full")`` default: a
    composite index answers an exact multi-bound probe in one hash lookup,
    while prefix mode pays a set intersection per probe — full has
    measured consistently faster on this workload, and prefix stays
    available as the memory-lean ablation (no composite materialisation).
    """
    nodes, edge_count = (300, 3_000) if quick else (700, 12_000)
    program, database = _triangle_workload(nodes, edge_count)
    timings = {}
    results = {}
    for mode in ("full", "prefix"):
        engine = SemiNaiveEngine(program, options=EngineOptions(index_keys=mode))
        times, result = _samples(lambda e=engine: e.evaluate(database))
        timings[mode] = times
        results[mode] = result
    assert results["full"] == results["prefix"]
    ratio = min(timings["prefix"]) / max(min(timings["full"]), 1e-9)
    bench_record("index_key_full_s", statistics.median(timings["full"]))
    bench_record("index_key_prefix_s", statistics.median(timings["prefix"]))
    bench_record("index_key_prefix_over_full_x", ratio)
    print(
        f"\nindex keys on {edge_count}-edge triangles: "
        f"full {min(timings['full']):.4f} s vs "
        f"prefix {min(timings['prefix']):.4f} s (prefix/full {ratio:.2f}x)"
    )
    # Both modes must terminate and agree; the default only has to not be
    # slower in the large — tiny quick-mode workloads are jitter-prone, so
    # the bound is deliberately loose (the recorded ratio is the study).
    assert ratio > 0.5


def test_plan_cache_stays_small_across_fixpoint():
    # Bucket memoisation: a 100k-iteration fixpoint must compile only a
    # handful of join plans per rule (one per crossed size bucket), not one
    # per iteration.
    program, database = _chain_reach_workload(5_000)
    engine = SemiNaiveEngine(program)
    engine.evaluate(database)
    plan_counts = engine.plan_memo_counts()
    assert 0 < max(plan_counts) <= 32
    print(f"\ncompiled join plans per rule: {plan_counts}")


@pytest.mark.benchmark(group="rule-plans")
def test_benchmark_planned_chain_reach(benchmark):
    program, database = _chain_reach_workload(10_000)
    engine = SemiNaiveEngine(program)
    benchmark(engine.evaluate, database)


@pytest.mark.benchmark(group="rule-plans")
def test_benchmark_pr1_chain_reach(benchmark):
    program, database = _chain_reach_workload(10_000)
    engine = SemiNaiveEngine(program, use_plans=False)
    benchmark(engine.evaluate, database)

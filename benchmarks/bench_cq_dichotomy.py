"""Experiment E10: the tractability dichotomy for conjunctive queries.

Query families over a tractable axis set ({child+, child*}) and over the
smallest intractable combination ({child, child+}) are evaluated with the
consistency-filtered join (and cross-checked against the generic
backtracking join on the small instances).  The printed search-step counts
show the dichotomy's shape: on the tractable class the filtered search is
essentially backtrack-free, on the NP-complete class the explored-step count
grows much faster with the query size.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import cyclic_cq, path_cq
from repro.cq import classify, evaluate_backtracking, evaluate_filtered
from repro.tree import random_tree

# A narrow (chain-like) document keeps even the NP-hard family finishable
# while preserving the relative growth rates.
DOCUMENT = random_tree(150, labels=("a", "b"), max_children=2, seed=21)
# size 1 would make even the "hard" family use a single axis (and thus fall
# into a tractable class); start at 2 so both sides of the dichotomy appear.
SIZES = (2, 3)


def test_dichotomy_classification_of_families():
    assert classify(path_cq(4, tractable=True)).tractable
    assert not classify(path_cq(4, tractable=False)).tractable
    assert classify(cyclic_cq(3, tractable=True)).tractable
    assert not classify(cyclic_cq(3, tractable=False)).tractable


def test_search_effort_tractable_vs_intractable():
    rows = []
    for size in SIZES:
        for tractable in (True, False):
            query = cyclic_cq(size, tractable=tractable)
            verdict = classify(query)
            assert verdict.tractable == tractable
            steps = [0]
            start = time.perf_counter()
            answers = evaluate_filtered(query, DOCUMENT, count_steps=steps)
            elapsed = time.perf_counter() - start
            if size <= 2:
                # correctness cross-check against the generic join
                assert answers == evaluate_backtracking(query, DOCUMENT)
            rows.append((size, verdict.complexity, steps[0], elapsed, len(answers)))
    print("\nE10  CQ dichotomy: filtered-search effort (cyclic 'ladder' queries)")
    print(f"{'size':>5} {'class':>13} {'steps':>10} {'seconds':>10} {'answers':>8}")
    for size, complexity, steps, elapsed, answers in rows:
        print(f"{size:>5} {complexity:>13} {steps:>10} {elapsed:>10.3f} {answers:>8}")
    # The dichotomy is a worst-case statement: at these instance sizes the
    # observable claim is that both families are answered correctly, the
    # classifier separates them, and everything stays finishable on the
    # chain-like document.  (NP-hard here means no polynomial algorithm can
    # exist in general, not that every small instance is slow.)
    assert {complexity for _, complexity, *_ in rows} == {"PTIME", "NP-complete"}
    assert all(elapsed < 30 for *_, elapsed, _ in rows)


@pytest.mark.benchmark(group="E10-cq")
def test_benchmark_tractable_path_query(benchmark):
    query = path_cq(4, tractable=True)
    benchmark(evaluate_filtered, query, DOCUMENT)


@pytest.mark.benchmark(group="E10-cq")
def test_benchmark_intractable_path_query(benchmark):
    query = path_cq(4, tractable=False)
    benchmark(evaluate_filtered, query, DOCUMENT)

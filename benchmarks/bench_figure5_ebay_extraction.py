"""Experiment E7 (Figure 5): throughput of the eBay wrapper.

The Figure 5 Elog program is run against synthetic eBay result pages of
growing size; the printed table reports records per second and checks the
extraction stays complete (one record / description / price / bids group per
offered item).
"""

from __future__ import annotations

import time

import pytest

from repro.elog import Extractor, figure5_program
from repro.html import parse_html
from repro.web.sites.ebay import ebay_page

PAGE_SIZES = (10, 40, 160)


def test_extraction_completeness_and_throughput():
    program = figure5_program()
    rows = []
    for count in PAGE_SIZES:
        document = parse_html(ebay_page(count=count, seed=7), url="www.ebay.com")
        start = time.perf_counter()
        base = Extractor(program).extract(document=document)
        elapsed = time.perf_counter() - start
        assert base.count("record") == count
        assert base.count("itemdes") == count
        assert base.count("price") == count
        assert base.count("bids") == count
        rows.append((count, elapsed, count / elapsed))
    print("\nE7  Figure 5 eBay wrapper throughput")
    print(f"{'records':>8} {'seconds':>10} {'records/s':>12}")
    for count, elapsed, throughput in rows:
        print(f"{count:>8} {elapsed:>10.4f} {throughput:>12.1f}")


@pytest.mark.benchmark(group="E7-ebay")
def test_benchmark_figure5_wrapper(benchmark):
    program = figure5_program()
    document = parse_html(ebay_page(count=40, seed=9), url="www.ebay.com")
    benchmark(lambda: Extractor(program).extract(document=document))

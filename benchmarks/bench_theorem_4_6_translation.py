"""Experiment E11 (Theorem 4.6): Core XPath -> TMNF translation is linear and
the translated programs evaluate correctly and efficiently."""

from __future__ import annotations

import time

import pytest

from repro.bench import scaling_tree
from repro.mdatalog import MonadicTreeEvaluator, is_tmnf
from repro.xpath import CoreXPathEvaluator, query_size, parse_xpath, translate_to_tmnf

LABELS = ("a", "b", "c", "d")
DOCUMENT = scaling_tree(2_000, seed=31, labels=LABELS)


def query_family(depth: int) -> str:
    segment = "/a[b]/descendant::c[following-sibling::d]"
    return "/" + "a" + segment * depth


def test_translation_size_and_time_linear():
    rows = []
    for depth in (1, 2, 4, 8):
        query = query_family(depth)
        parsed = parse_xpath(query)
        start = time.perf_counter()
        program = translate_to_tmnf(parsed, labels=LABELS)
        elapsed = time.perf_counter() - start
        assert is_tmnf(program)
        rows.append((query_size(parsed), len(program.rules), elapsed))
    print("\nE11  Theorem 4.6: Core XPath -> TMNF translation")
    print(f"{'|Q|':>6} {'rules':>8} {'seconds':>10} {'rules/|Q|':>10}")
    for size, rules, elapsed in rows:
        print(f"{size:>6} {rules:>8} {elapsed:>10.5f} {rules / size:>10.1f}")
    ratios = [rules / size for size, rules, _ in rows]
    assert max(ratios) / min(ratios) < 3  # linear-size output


def test_translated_program_agrees_with_evaluator():
    query = query_family(2)
    program = translate_to_tmnf(query, labels=LABELS)
    expected = {
        node.preorder_index for node in CoreXPathEvaluator(DOCUMENT).evaluate(query)
    }
    got = {
        node.preorder_index
        for node in MonadicTreeEvaluator(program).select(DOCUMENT, "answer")
    }
    assert got == expected


@pytest.mark.benchmark(group="E11-translation")
def test_benchmark_translation(benchmark):
    query = parse_xpath(query_family(4))
    benchmark(translate_to_tmnf, query, LABELS)


@pytest.mark.benchmark(group="E11-translation")
def test_benchmark_translated_program_evaluation(benchmark):
    program = translate_to_tmnf(query_family(2), labels=LABELS)
    evaluator = MonadicTreeEvaluator(program)
    benchmark(evaluator.evaluate, DOCUMENT)

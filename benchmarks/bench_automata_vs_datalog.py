"""Experiment E5 (Theorem 2.5): tree automata vs their monadic datalog
compilation — same answers, comparable (linear) scaling."""

from __future__ import annotations

import time

import pytest

from repro.automata import compile_automaton, leaf_selector_automaton
from repro.bench import scaling_tree
from repro.mdatalog import MonadicTreeEvaluator

LABELS = ("a", "b", "c")
# The compiled program grounds a few hundred TMNF rules per node; beyond ~4k
# nodes the measurement starts reflecting Python allocator pressure rather
# than the algorithm, so the scaling series stops there (the pytest-benchmark
# entries below still exercise 8k nodes).
SIZES = (1_000, 2_000, 4_000)


def test_automaton_and_compiled_program_scale_together():
    automaton = leaf_selector_automaton(LABELS)
    program = compile_automaton(automaton, LABELS)
    evaluator = MonadicTreeEvaluator(program)
    rows = []
    for size in SIZES:
        document = scaling_tree(size, seed=61, labels=LABELS)
        start = time.perf_counter()
        direct = automaton.select(document)
        direct_time = time.perf_counter() - start
        start = time.perf_counter()
        compiled = evaluator.select(document, "selected")
        compiled_time = time.perf_counter() - start
        assert [n.preorder_index for n in direct] == [n.preorder_index for n in compiled]
        rows.append((size, direct_time, compiled_time))
    print("\nE5  automaton run vs compiled monadic datalog (leaf-selector query)")
    print(f"{'|dom|':>8} {'automaton s':>13} {'datalog s':>12}")
    for size, direct_time, compiled_time in rows:
        print(f"{size:>8} {direct_time:>13.4f} {compiled_time:>12.4f}")
    # both scale roughly linearly: 4x the input should stay well below a
    # quadratic blow-up (which would be 16x).
    assert rows[-1][1] < max(rows[0][1], 1e-4) * 12
    assert rows[-1][2] < max(rows[0][2], 1e-4) * 12


@pytest.mark.benchmark(group="E5-automata")
def test_benchmark_direct_automaton(benchmark):
    automaton = leaf_selector_automaton(LABELS)
    document = scaling_tree(8_000, seed=62, labels=LABELS)
    benchmark(automaton.select, document)


@pytest.mark.benchmark(group="E5-automata")
def test_benchmark_compiled_program(benchmark):
    automaton = leaf_selector_automaton(LABELS)
    program = compile_automaton(automaton, LABELS)
    evaluator = MonadicTreeEvaluator(program)
    document = scaling_tree(8_000, seed=62, labels=LABELS)
    benchmark(evaluator.evaluate, document)

"""Perf-trajectory gate: fail CI on >20% regression against the previous run.

Compares two ``BENCH_engine.json`` files (workload -> median seconds, or a
ratio for ``*_x`` speed-ups and ``*_rate`` hit rates) and exits non-zero when
a gated workload regressed beyond the threshold:

* ``*_s`` workloads are timings (medians of repeated passes) — regression
  means the current value grew;
* ``*_rate`` workloads are hit rates (deterministic for a given workload) —
  regression means the current value shrank;
* ``*_x`` speed-up factors are the ratio of two wall-clocks — the noisiest
  statistic by construction, so they are *reported* with the same
  up/down annotation but never fail the gate (their numerator and
  denominator timings are gated individually anyway);
* thread-scheduling workloads (the ``session_concurrency_*`` storm and the
  ``extract_many_parallel_*`` pool timings of
  ``bench_session_concurrency.py``) are gated at **twice** the threshold:
  their medians ride on OS scheduling and pool spin-up, which jitters far
  beyond single-threaded evaluation on shared CI runners.

Workloads present on only one side are reported but never fail the gate
(benchmarks come and go across PRs — new concurrency workloads appear as
report-only notes on their first run).  Usage::

    python benchmarks/check_perf_trajectory.py BASELINE.json CURRENT.json \
        [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


def load(path: str) -> Dict[str, float]:
    payload = json.loads(Path(path).read_text())
    return {
        workload: float(value)
        for workload, value in payload.items()
        if isinstance(value, (int, float))
    }


#: Workload families whose timings depend on OS thread scheduling; their
#: effective threshold is doubled (see module docstring).
NOISY_PREFIXES: Tuple[str, ...] = (
    "session_concurrency_",
    "extract_many_parallel_",
    "distrib_",
    # Sub-10ms index-key probes: dominated by allocator/cache jitter.
    "index_key_",
)


def workload_threshold(workload: str, threshold: float) -> float:
    """The effective regression threshold for one workload."""
    if workload.startswith(NOISY_PREFIXES):
        return threshold * 2.0
    return threshold


def compare(
    baseline: Dict[str, float], current: Dict[str, float], threshold: float
) -> Tuple[List[str], List[str]]:
    """Return (regressions, notes); the gate fails iff regressions is non-empty."""
    regressions: List[str] = []
    notes: List[str] = []
    for workload in sorted(set(baseline) | set(current)):
        if workload not in baseline:
            notes.append(f"new workload {workload}: {current[workload]:.6f}")
            continue
        if workload not in current:
            notes.append(f"workload {workload} no longer measured")
            continue
        old, new = baseline[workload], current[workload]
        lower_is_better = workload.endswith("_s")
        gated = not workload.endswith("_x")
        effective = workload_threshold(workload, threshold)
        if old <= 0:
            notes.append(f"{workload}: non-positive baseline {old}; skipped")
            continue
        change = (new - old) / old
        direction = "slower" if lower_is_better else "lower"
        worse = change > effective if lower_is_better else change < -effective
        status = "worse" if worse else "ok"
        if worse and not gated:
            status = "worse (informational: speed-up ratios are not gated)"
        if effective != threshold:
            status += f" [thread-noisy: threshold {effective:.0%}]"
        notes.append(f"{workload}: {old:.6f} -> {new:.6f} ({change:+.1%}, {status})")
        if worse and gated:
            regressions.append(
                f"{workload} is {abs(change):.1%} {direction} "
                f"({old:.6f} -> {new:.6f}, threshold {effective:.0%})"
            )
    return regressions, notes


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="previous run's BENCH_engine.json")
    parser.add_argument("current", help="this run's BENCH_engine.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression per workload (default 0.20)",
    )
    args = parser.parse_args(argv)
    regressions, notes = compare(
        load(args.baseline), load(args.current), args.threshold
    )
    print("perf trajectory:")
    for note in notes:
        print(f"  {note}")
    if regressions:
        print(f"\nFAIL: {len(regressions)} workload(s) regressed >" f"{args.threshold:.0%}:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print("\nOK: no workload regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Construction cost of server components under the compiled-plan registry.

The Transformation Server hosts hundreds of components wrapping the same
handful of programs (Section 5 / 6); before the registry every
``DatalogQueryComponent`` recompiled its program at construction.  This
benchmark builds the ISSUE's headline configuration — 200 components over 4
distinct programs — with shared plans (the default) and with
``share_plans=False`` (the per-component compilation baseline), asserts the
registry really performed exactly 4 compilations for 200 constructions, and
records both construction times in BENCH_engine.json.
"""

from __future__ import annotations

import statistics

from repro.datalog import clear_plan_registry, plan_registry_info
from repro.mdatalog import MonadicProgram
from repro.server import DatalogQueryComponent
from repro.tree.builder import tree

COMPONENTS = 200
PROGRAMS = 4


def _program(k: int, chain: int = 24) -> MonadicProgram:
    """A monadic program with ``chain`` recursive rules (big enough that
    compilation dominates the rest of component construction)."""
    lines = [f"p{k}_0(X) :- label_b(X)."]
    for i in range(1, chain):
        lines.append(f"p{k}_{i}(Y) :- p{k}_{i - 1}(X), firstchild(X, Y).")
        lines.append(f"p{k}_{i}(Y) :- p{k}_{i - 1}(X), nextsibling(X, Y).")
    return MonadicProgram.parse("\n".join(lines), query_predicates=[f"p{k}_{chain - 1}"])


def _build_components(programs, share_plans):
    document = tree(("doc", ("b", ("a",)), ("a",)))
    return [
        DatalogQueryComponent(
            f"component-{n}",
            programs[n % PROGRAMS],
            lambda: document,
            force_generic=True,  # the generic engine is the registry client
            share_plans=share_plans,
        )
        for n in range(COMPONENTS)
    ]


def test_registry_amortises_construction_over_200_components(best_of, bench_record):
    programs = [_program(k) for k in range(PROGRAMS)]

    def construct_shared():
        clear_plan_registry()  # every repeat pays the 4 cold compilations
        return _build_components(programs, share_plans=True)

    def construct_private():
        return _build_components(programs, share_plans=False)

    shared_samples = []
    private_samples = []
    for _ in range(3):
        shared_samples.append(best_of(construct_shared, repeats=1)[0])
        private_samples.append(best_of(construct_private, repeats=1)[0])

    # CacheInfo accounting: the last shared pass compiled each distinct
    # program exactly once and served every other construction from the
    # registry.
    info = plan_registry_info()
    assert info.misses == PROGRAMS, f"expected {PROGRAMS} compilations: {info}"
    assert info.hits == COMPONENTS - PROGRAMS
    assert info.size == PROGRAMS

    speedup = min(private_samples) / max(min(shared_samples), 1e-9)
    bench_record("registry_200x4_shared_s", statistics.median(shared_samples))
    bench_record("registry_200x4_private_s", statistics.median(private_samples))
    bench_record("registry_200x4_speedup_x", speedup)
    print(
        f"\n200 components / 4 programs: shared {min(shared_samples):.4f} s vs "
        f"per-component compilation {min(private_samples):.4f} s "
        f"(speed-up {speedup:.1f}x, registry {info.hits} hits / {info.misses} misses)"
    )
    # 196 of 200 compilations are amortised away; construction must get
    # decisively faster, not merely not-slower.
    assert speedup >= 2.0


def test_shared_components_answer_like_private_ones():
    # The benchmark's own correctness guard: sharing compiled programs
    # across all 200 components changes nothing about their output.
    programs = [_program(k, chain=6) for k in range(PROGRAMS)]
    shared = _build_components(programs, share_plans=True)
    private = _build_components(programs, share_plans=False)
    for shared_component, private_component in zip(shared, private):
        assert (
            shared_component.process([]).children
            == private_component.process([]).children
        )

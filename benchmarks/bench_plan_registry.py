"""Construction cost of server components under the compiled-plan registry.

The Transformation Server hosts hundreds of components wrapping the same
handful of programs (Section 5 / 6); before the registry every
``DatalogQueryComponent`` recompiled its program at construction.  This
benchmark builds the ISSUE's headline configuration — 200 components over 4
distinct programs — with shared plans (the default) and with
``share_plans=False`` (the per-component compilation baseline), asserts the
registry really performed exactly 4 compilations for 200 constructions, and
records both construction times in BENCH_engine.json.

The ``Session.extract_many`` workload measures the façade's batch path over
a server-style document stream: one session-owned interpreter wrapping N
documents versus the pre-façade pattern of re-parsing the wrapper and
rebuilding an Extractor per document.
"""

from __future__ import annotations

import statistics

from repro import EngineOptions, Session
from repro.datalog import clear_plan_registry, plan_registry_info
from repro.elog import Extractor, parse_elog
from repro.html import parse_html
from repro.mdatalog import MonadicProgram
from repro.server import DatalogQueryComponent
from repro.tree.builder import tree
from repro.web.sites.bookstore import generate_books, table_shop_page

COMPONENTS = 200
PROGRAMS = 4


def _program(k: int, chain: int = 24) -> MonadicProgram:
    """A monadic program with ``chain`` recursive rules (big enough that
    compilation dominates the rest of component construction)."""
    lines = [f"p{k}_0(X) :- label_b(X)."]
    for i in range(1, chain):
        lines.append(f"p{k}_{i}(Y) :- p{k}_{i - 1}(X), firstchild(X, Y).")
        lines.append(f"p{k}_{i}(Y) :- p{k}_{i - 1}(X), nextsibling(X, Y).")
    return MonadicProgram.parse("\n".join(lines), query_predicates=[f"p{k}_{chain - 1}"])


def _build_components(programs, share_plans):
    document = tree(("doc", ("b", ("a",)), ("a",)))
    # force_generic: the generic engine is the registry client
    options = EngineOptions(force_generic=True, share_plans=share_plans)
    return [
        DatalogQueryComponent(
            f"component-{n}",
            programs[n % PROGRAMS],
            lambda: document,
            options=options,
        )
        for n in range(COMPONENTS)
    ]


def test_registry_amortises_construction_over_200_components(best_of, bench_record):
    programs = [_program(k) for k in range(PROGRAMS)]

    def construct_shared():
        clear_plan_registry()  # every repeat pays the 4 cold compilations
        return _build_components(programs, share_plans=True)

    def construct_private():
        return _build_components(programs, share_plans=False)

    shared_samples = []
    private_samples = []
    for _ in range(3):
        shared_samples.append(best_of(construct_shared, repeats=1)[0])
        private_samples.append(best_of(construct_private, repeats=1)[0])

    # CacheInfo accounting: the last shared pass compiled each distinct
    # program exactly once and served every other construction from the
    # registry.
    info = plan_registry_info()
    assert info.misses == PROGRAMS, f"expected {PROGRAMS} compilations: {info}"
    assert info.hits == COMPONENTS - PROGRAMS
    assert info.size == PROGRAMS

    speedup = min(private_samples) / max(min(shared_samples), 1e-9)
    bench_record("registry_200x4_shared_s", statistics.median(shared_samples))
    bench_record("registry_200x4_private_s", statistics.median(private_samples))
    bench_record("registry_200x4_speedup_x", speedup)
    print(
        f"\n200 components / 4 programs: shared {min(shared_samples):.4f} s vs "
        f"per-component compilation {min(private_samples):.4f} s "
        f"(speed-up {speedup:.1f}x, registry {info.hits} hits / {info.misses} misses)"
    )
    # 196 of 200 compilations are amortised away; construction must get
    # decisively faster, not merely not-slower.
    assert speedup >= 2.0


def test_shared_components_answer_like_private_ones():
    # The benchmark's own correctness guard: sharing compiled programs
    # across all 200 components changes nothing about their output.
    programs = [_program(k, chain=6) for k in range(PROGRAMS)]
    shared = _build_components(programs, share_plans=True)
    private = _build_components(programs, share_plans=False)
    for shared_component, private_component in zip(shared, private):
        assert (
            shared_component.process([]).children
            == private_component.process([]).children
        )


# ---------------------------------------------------------------------------
# Session.extract_many: the façade's batch path over a document stream
# ---------------------------------------------------------------------------

STREAM_DOCUMENTS = 40

STREAM_WRAPPER = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


def _document_stream():
    return [
        parse_html(
            table_shop_page(generate_books(8, seed=seed)),
            url=f"shop-{seed}.test/bestsellers",
        )
        for seed in range(STREAM_DOCUMENTS)
    ]


def test_session_extract_many_beats_per_document_interpreters(best_of, bench_record):
    documents = _document_stream()

    def batch():
        # One session: the wrapper is parsed once and one interpreter
        # serves the whole stream.
        return Session().extract_many(STREAM_WRAPPER, documents)

    def rebuild_per_document():
        # The pre-façade server-loop pattern: every document pays a parse
        # plus a fresh Extractor.
        return [
            Extractor(parse_elog(STREAM_WRAPPER)).extract(document=document)
            for document in documents
        ]

    batch_samples = []
    rebuild_samples = []
    results = None
    for _ in range(3):
        batch_seconds, results = best_of(batch, repeats=1)
        rebuild_seconds, baseline = best_of(rebuild_per_document, repeats=1)
        batch_samples.append(batch_seconds)
        rebuild_samples.append(rebuild_seconds)

    # Correctness guard: the batch path extracts exactly what the
    # per-document interpreters extract.
    assert [r.count("book") for r in results] == [b.count("book") for b in baseline]
    assert all(result.count("book") == 8 for result in results)

    speedup = min(rebuild_samples) / max(min(batch_samples), 1e-9)
    bench_record("extract_many_batch_s", statistics.median(batch_samples))
    bench_record("extract_many_rebuild_s", statistics.median(rebuild_samples))
    bench_record("extract_many_speedup_x", speedup)
    print(
        f"\nextract_many over {STREAM_DOCUMENTS} documents: batch "
        f"{min(batch_samples):.4f} s vs per-document interpreters "
        f"{min(rebuild_samples):.4f} s (speed-up {speedup:.2f}x)"
    )
    # The shared interpreter must not be materially slower than rebuilding;
    # the threshold leaves wide headroom because extraction itself dominates
    # both sides (~0.15 s each, 3 samples) and shared CI runners jitter far
    # more than the parse/construction amortisation being measured.  The
    # recorded extract_many_*_s medians are what the perf-trajectory gate
    # actually watches.
    assert speedup >= 0.7

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint analyze bench-quick bench

# Tier-1 gate plus lint, static analysis and the quick benchmark pass;
# CI runs exactly this.
check: lint analyze test bench-quick

test:
	$(PYTHON) -m pytest -x -q

# Ruff is configured in pyproject.toml but is not part of the runtime
# image; skip with a notice when it is unavailable (CI installs it).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Static-analysis smoke gate: every example program must be free of
# error-severity diagnostics (see docs/ANALYSIS.md for the rule catalog).
analyze:
	$(PYTHON) -m repro.analysis examples

# Also writes BENCH_engine.json (workload -> median seconds) at the repo
# root; CI uploads it as the engine perf-trajectory artifact.
bench-quick:
	$(PYTHON) -m pytest benchmarks -x -q --quick --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test lint typecheck analyze explain-examples bench-quick bench bench-distrib

# Tier-1 gate plus lint, typecheck, static analysis, explain-plan smoke
# and the quick benchmark pass; CI runs exactly this.
check: lint typecheck analyze explain-examples test bench-quick

test:
	$(PYTHON) -m pytest -x -q

# Ruff is configured in pyproject.toml but is not part of the runtime
# image; skip with a notice when it is unavailable (CI installs it).
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# Gradual typing (configured in pyproject.toml: repro.analysis and
# repro.datalog are checked, the rest is exempt until migrated).  Like
# ruff, mypy is not part of the runtime image; skip with a notice when it
# is unavailable (CI installs it).
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; \
	fi

# Static-analysis smoke gate: every example program must be free of
# error-severity diagnostics (see docs/ANALYSIS.md for the rule catalog).
analyze:
	$(PYTHON) -m repro.analysis examples

# Explain-plan smoke gate: --explain must render a plan (or a clean
# "not explainable" verdict for non-core Elog wrappers) for every
# embedded example program without crashing.
explain-examples:
	$(PYTHON) -m repro.analysis --explain examples

# Also writes BENCH_engine.json (workload -> median seconds) at the repo
# root; CI uploads it as the engine perf-trajectory artifact.
bench-quick:
	$(PYTHON) -m pytest benchmarks -x -q --quick --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

# The full-size scale-out benchmark (10^4-document stream, 4 worker
# processes); records distrib_* workloads into BENCH_engine.json.
bench-distrib:
	$(PYTHON) -m pytest benchmarks/bench_distrib.py -q -s --benchmark-disable

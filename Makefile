PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: check test bench-quick bench

# Tier-1 gate plus the quick benchmark pass; CI runs exactly this.
check: test bench-quick

test:
	$(PYTHON) -m pytest -x -q

# Also writes BENCH_engine.json (workload -> median seconds) at the repo
# root; CI uploads it as the engine perf-trajectory artifact.
bench-quick:
	$(PYTHON) -m pytest benchmarks -x -q --quick --benchmark-disable

bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

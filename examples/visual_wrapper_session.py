"""Section 3.2 / Figures 3-4 — a simulated visual wrapper-specification session.

A bestseller page is "displayed"; the user defines patterns by selecting
regions of the rendered text; the system generates Elog filters, the user
refines one that is too general, and the finished wrapper is run through
the façade :class:`Session`.

Run with:  python examples/visual_wrapper_session.py
"""

from repro import Session
from repro.elog import ContainsCondition, ElementPath
from repro.html import parse_html
from repro.visual import PatternBuilderSession
from repro.web.sites.bookstore import generate_books, table_shop_page
from repro.xmlgen import to_xml


def main() -> None:
    books = generate_books(6, seed=23)
    document = parse_html(table_shop_page(books), url="books-a.test/bestsellers")
    session = PatternBuilderSession(document)

    print("rendered example page (what the user sees):\n")
    print("\n".join(session.page.text.splitlines()[:12]))

    # 1. Drag over the first book row to define the <bookrow> pattern.
    text = session.page.text
    start = text.find(books[0].title)
    price_text = f"$ {books[0].price:.2f}"
    end = text.find(price_text) + len(price_text)
    proposal = session.propose_filter_region("bookrow", "document", start, end)
    print(f"\nproposed filter: {proposal.rule}")
    print(f"matches {proposal.match_count()} regions (one too many: the header row)")

    # 2. The filter is too general -> refine it visually: a book row must
    #    contain a hyperlinked title.
    proposal = session.refine_with_condition(
        proposal, ContainsCondition(path=ElementPath.parse(".a"))
    )
    print(f"after refinement: matches {proposal.match_count()} regions")
    session.accept(proposal)

    # 3. Click on a price to define <price> below <bookrow>.
    price_proposal = session.propose_filter("price", "bookrow", price_text)
    session.accept(price_proposal)
    # 4. Click on a title to define <title> below <bookrow>.
    title_proposal = session.propose_filter("title", "bookrow", books[1].title)
    session.accept(title_proposal)

    print("\npattern/filter tree (Figure 4, top-left panel):")
    for pattern, filters in session.program_tree().items():
        print(f"  <{pattern}>")
        for filter_text in filters:
            print(f"      {filter_text}")

    print("\ntesting the <price> pattern:", session.test_pattern("price"))

    # Run the finished wrapper through the façade.
    result = Session().extract(session.wrapper(), document=document)
    print("\nfinal XML output:\n")
    print(to_xml(result.to_xml(root_name="bestsellers")))


if __name__ == "__main__":
    main()

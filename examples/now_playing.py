"""Section 6.1 — "Now Playing": radio playlists, charts and lyrics on a PDA.

Wraps the simulated radio / chart / lyrics sites, joins the currently playing
songs with their chart positions and lyrics, and syndicates the result as a
small HTML portal page for mobile devices.  The whole network — four radio
wrappers fanning into a merge, a two-sided join, an HTML deliverer — is
declared through the façade's pipeline builder.

Run with:  python examples/now_playing.py
"""

from repro import Session
from repro.api import HtmlPortalDeliverer
from repro.web import SimulatedWeb
from repro.web.sites.music import now_playing_site, stations

RADIO_WRAPPER = """
playing(S, X) <- document(_, S), subelem(S, (?.div, [(class, nowplaying, exact)]), X)
song(S, X)    <- playing(_, S), subelem(S, (?.span, [(class, song, exact)]), X)
artist(S, X)  <- playing(_, S), subelem(S, (?.span, [(class, artist, exact)]), X)
stream(S, X)  <- playing(_, S), subelem(S, (?.a, [(class, stream, exact)]), X)
"""
CHART_WRAPPER = """
entry(S, X)    <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, pos, exact)]))
position(S, X) <- entry(_, S), subelem(S, (?.td, [(class, pos, exact)]), X)
song(S, X)     <- entry(_, S), subelem(S, (?.td, [(class, song, exact)]), X)
"""


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(now_playing_site(station_count=4, chart_count=2, seed=5))

    session = Session()
    builder = session.pipeline("now-playing")
    radio_names = []
    for station in stations(4, seed=5):
        name = f"radio_{station.name.replace(' ', '_').lower()}"
        radio_names.append(name)
        builder.wrapper(name, RADIO_WRAPPER, web, station.url, root_name="station")
    pipeline = (
        builder
        .wrapper("chart_1", CHART_WRAPPER, web, "charts-1.test/top", root_name="chart")
        .integrate("radio_merge", inputs=radio_names, root_name="stations")
        .join(
            "with_charts", primary="radio_merge", other="chart_1",
            record_name="playing", other_record_name="entry",
            key="song", root_name="enriched",
        )
        .deliver(HtmlPortalDeliverer("pda", record_name="playing",
                                     fields=("song", "artist", "position")))
        .build()
    )

    # Periodic refresh: radio sites every tick, charts would be slower in a
    # real deployment (Section 6.1).
    server = pipeline.serve(period=1)
    server.tick(steps=2)

    enriched = pipeline.last_results["with_charts"]
    print("currently playing (joined with chart positions):")
    for playing in enriched.find_all("playing"):
        song = playing.findtext("song")
        artist = playing.findtext("artist")
        entries = playing.find_all("entry")
        position = entries[0].findtext("position") if entries else "-"
        print(f"  {song:<24} {artist:<18} chart position: {position}")

    portal = pipeline.component("pda")
    print(f"\nPDA portal page ({len(portal.page)} characters of HTML) delivered "
          f"to {portal.deliveries[-1].recipient!r}")


if __name__ == "__main__":
    main()

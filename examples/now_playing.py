"""Section 6.1 — "Now Playing": radio playlists, charts and lyrics on a PDA.

Wraps the simulated radio / chart / lyrics sites, joins the currently playing
songs with their chart positions and lyrics, and syndicates the result as a
small HTML portal page for mobile devices.

Run with:  python examples/now_playing.py
"""

from repro.elog import parse_elog
from repro.server import (
    HtmlPortalDeliverer,
    InformationPipe,
    IntegrationComponent,
    JoinComponent,
    TransformationServer,
    WrapperComponent,
)
from repro.web import SimulatedWeb
from repro.web.sites.music import now_playing_site, stations

RADIO_WRAPPER = parse_elog(
    """
    playing(S, X) <- document(_, S), subelem(S, (?.div, [(class, nowplaying, exact)]), X)
    song(S, X)    <- playing(_, S), subelem(S, (?.span, [(class, song, exact)]), X)
    artist(S, X)  <- playing(_, S), subelem(S, (?.span, [(class, artist, exact)]), X)
    stream(S, X)  <- playing(_, S), subelem(S, (?.a, [(class, stream, exact)]), X)
    """
)
CHART_WRAPPER = parse_elog(
    """
    entry(S, X)    <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, pos, exact)]))
    position(S, X) <- entry(_, S), subelem(S, (?.td, [(class, pos, exact)]), X)
    song(S, X)     <- entry(_, S), subelem(S, (?.td, [(class, song, exact)]), X)
    """
)


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(now_playing_site(station_count=4, chart_count=2, seed=5))

    pipe = InformationPipe("now-playing")
    radio_names = []
    for station in stations(4, seed=5):
        name = f"radio_{station.name.replace(' ', '_').lower()}"
        radio_names.append(name)
        pipe.add(WrapperComponent(name, RADIO_WRAPPER, web, station.url, root_name="station"))
    pipe.add(WrapperComponent("chart_1", CHART_WRAPPER, web, "charts-1.test/top", root_name="chart"))
    pipe.add(IntegrationComponent("radio_merge", root_name="stations"))
    pipe.add(
        JoinComponent(
            "with_charts", record_name="playing", other_record_name="entry",
            key="song", root_name="enriched",
        )
    )
    pipe.add(HtmlPortalDeliverer("pda", record_name="playing", fields=("song", "artist", "position")))
    for name in radio_names:
        pipe.connect(name, "radio_merge")
    pipe.connect("radio_merge", "with_charts")
    pipe.connect("chart_1", "with_charts")
    pipe.connect("with_charts", "pda")

    # Periodic refresh: radio sites every tick, charts would be slower in a
    # real deployment (Section 6.1).
    server = TransformationServer()
    server.register(pipe, period=1)
    server.tick(steps=2)

    enriched = pipe.last_results["with_charts"]
    print("currently playing (joined with chart positions):")
    for playing in enriched.find_all("playing"):
        song = playing.findtext("song")
        artist = playing.findtext("artist")
        entries = playing.find_all("entry")
        position = entries[0].findtext("position") if entries else "-"
        print(f"  {song:<24} {artist:<18} chart position: {position}")

    portal = pipe.component("pda")
    print(f"\nPDA portal page ({len(portal.page)} characters of HTML) delivered "
          f"to {portal.deliveries[-1].recipient!r}")


if __name__ == "__main__":
    main()

"""Quickstart: write a small Elog wrapper and run it over an HTML page.

Run with:  python examples/quickstart.py
"""

from repro.elog import Extractor, parse_elog
from repro.html import parse_html
from repro.xmlgen import to_xml

PAGE = """
<html><body>
  <h1>Second-hand cameras</h1>
  <table class="offers">
    <tr><td class="model"><a href="/c/1">Reflexa 35</a></td><td class="price">$ 120.00</td></tr>
    <tr><td class="model"><a href="/c/2">Panorama II</a></td><td class="price">EUR 89.50</td></tr>
    <tr><td class="model">Boxcam (no link)</td><td class="price">$ 45.00</td></tr>
  </table>
</body></html>
"""

# An Elog wrapper: one pattern per concept, defined relative to its parent
# pattern, exactly as in Section 3 of the paper.
WRAPPER = r"""
offer(S, X)  <- document(_, S), subelem(S, ?.tr, X)
model(S, X)  <- offer(_, S), subelem(S, (?.td, [(class, model, exact)]), X)
price(S, X)  <- offer(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
link(S, X)   <- model(_, S), subelem(S, .a, X)
url(S, X)    <- link(_, S), subatt(S, href, X)
"""


def main() -> None:
    document = parse_html(PAGE, url="cameras.example/offers")
    program = parse_elog(WRAPPER).mark_auxiliary("link")
    extractor = Extractor(program)

    # 1. The pattern instance base: the hierarchical extraction result.
    base = extractor.extract(document=document)
    print("patterns extracted:", ", ".join(base.patterns()))
    for offer in base.instances_of("offer"):
        model = offer.find_all("model")
        price = offer.find_all("price")
        print(" -", model[0].text() if model else "?", "/", price[0].text() if price else "?")

    # 2. The XML Designer / Transformer output (the machine-friendly view).
    print("\nXML output:\n")
    print(to_xml(base.to_xml(root_name="offers", auxiliary=program.auxiliary_patterns)))


if __name__ == "__main__":
    main()

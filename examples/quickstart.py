"""Quickstart: write a small Elog wrapper and run it through the façade.

Run with:  python examples/quickstart.py
"""

from repro import Session
from repro.html import parse_html
from repro.xmlgen import to_xml

PAGE = """
<html><body>
  <h1>Second-hand cameras</h1>
  <table class="offers">
    <tr><td class="model"><a href="/c/1">Reflexa 35</a></td><td class="price">$ 120.00</td></tr>
    <tr><td class="model"><a href="/c/2">Panorama II</a></td><td class="price">EUR 89.50</td></tr>
    <tr><td class="model">Boxcam (no link)</td><td class="price">$ 45.00</td></tr>
  </table>
</body></html>
"""

# An Elog wrapper: one pattern per concept, defined relative to its parent
# pattern, exactly as in Section 3 of the paper.
WRAPPER = r"""
offer(S, X)  <- document(_, S), subelem(S, ?.tr, X)
model(S, X)  <- offer(_, S), subelem(S, (?.td, [(class, model, exact)]), X)
price(S, X)  <- offer(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
link(S, X)   <- model(_, S), subelem(S, .a, X)
url(S, X)    <- link(_, S), subatt(S, href, X)
"""


def main() -> None:
    document = parse_html(PAGE, url="cameras.example/offers")
    session = Session()
    program = session.wrapper(WRAPPER).program.mark_auxiliary("link")

    # 1. The uniform extraction result over the pattern instance base.
    result = session.extract(program, document=document)
    print("patterns extracted:", ", ".join(sorted(result.patterns())))
    for offer in result.instances("offer"):
        model = offer.find_all("model")
        price = offer.find_all("price")
        print(" -", model[0].text() if model else "?", "/", price[0].text() if price else "?")

    # 2. The XML Designer / Transformer output (the machine-friendly view);
    #    the result remembers the wrapper's auxiliary patterns by itself.
    print("\nXML output:\n")
    print(to_xml(result.to_xml(root_name="offers")))


if __name__ == "__main__":
    main()

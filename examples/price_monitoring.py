"""Sections 6.6/6.7 — business intelligence: competitor price monitoring.

Three competitor part catalogues are wrapped and integrated; for every
product the cheapest competitor is reported, and a change-gated deliverer
raises an alert when a competitor moves a price.

Run with:  python examples/price_monitoring.py
"""

from collections import defaultdict

from repro.elog import parse_elog
from repro.elog.concepts import parse_number
from repro.server import (
    ChangeDetector,
    ChangeGatedDeliverer,
    EmailDeliverer,
    InformationPipe,
    IntegrationComponent,
    TransformationServer,
    WrapperComponent,
)
from repro.web import SimulatedWeb
from repro.web.sites.markets import competitor_sites

PRICE_WRAPPER = parse_elog(
    """
    offer(S, X)   <- document(_, S), subelem(S, ?.tr, X)
    product(S, X) <- offer(_, S), subelem(S, (?.td, [(class, product, exact)]), X)
    price(S, X)   <- offer(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
    """
)


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(competitor_sites(shops=3, count=6, seed=9))

    email = EmailDeliverer("alerts", "analyst@example.test", subject="price change alert")
    gate = ChangeGatedDeliverer("gate", email, ChangeDetector("offer", key="product"))

    pipe = InformationPipe("price-watch")
    for index in range(3):
        name = f"competitor_{index + 1}"
        pipe.add(
            WrapperComponent(name, PRICE_WRAPPER, web,
                             f"competitor-{index + 1}.test/prices", root_name=name)
        )
    pipe.add(IntegrationComponent("market", root_name="market"))
    pipe.add(gate)
    for index in range(3):
        pipe.connect(f"competitor_{index + 1}", "market")
    # the analyst watches competitor 2 specifically for price moves
    pipe.connect("competitor_2", "gate")

    server = TransformationServer()
    server.register(pipe, period=1)
    server.tick()

    market = pipe.last_results["market"]
    best = defaultdict(lambda: (None, float("inf")))
    for shop in market.children:
        for offer in shop.iter("offer"):
            product = offer.findtext("product")
            price = parse_number(offer.findtext("price")) or float("inf")
            if price < best[product][1]:
                best[product] = (shop.name, price)
    print("cheapest source per product:")
    for product, (shop, price) in sorted(best.items()):
        print(f"  {product:<16} {shop:<14} EUR {price:.2f}")

    # competitor 2 undercuts on one product -> the analyst gets one alert
    def undercut_first_price(html: str) -> str:
        old_price = html.split('class="price">')[1].split("<")[0]
        return html.replace(old_price, "EUR 9.99", 1)

    web.update("competitor-2.test/prices", undercut_first_price)
    server.tick()
    print(f"\nalerts sent after the price change: {len(email.deliveries)}")
    if email.deliveries:
        print("alert subject:", email.deliveries[-1].subject)


if __name__ == "__main__":
    main()

"""Sections 6.6/6.7 — business intelligence: competitor price monitoring.

Three competitor part catalogues are wrapped and integrated; for every
product the cheapest competitor is reported, and a change-gated e-mail
deliverer — declared on the pipeline's ``deliver`` stage — raises an alert
when a competitor moves a price.

Run with:  python examples/price_monitoring.py
"""

from collections import defaultdict

from repro import Session
from repro.api import ChangeDetector, EmailDeliverer
from repro.elog.concepts import parse_number
from repro.web import SimulatedWeb
from repro.web.sites.markets import competitor_sites

PRICE_WRAPPER = """
offer(S, X)   <- document(_, S), subelem(S, ?.tr, X)
product(S, X) <- offer(_, S), subelem(S, (?.td, [(class, product, exact)]), X)
price(S, X)   <- offer(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(competitor_sites(shops=3, count=6, seed=9))

    email = EmailDeliverer("alerts", "analyst@example.test", subject="price change alert")

    session = Session()
    builder = session.pipeline("price-watch")
    competitor_names = []
    for index in range(3):
        name = f"competitor_{index + 1}"
        competitor_names.append(name)
        builder.wrapper(name, PRICE_WRAPPER, web,
                        f"competitor-{index + 1}.test/prices", root_name=name)
    pipeline = (
        builder
        .integrate("market", inputs=competitor_names, root_name="market")
        # the analyst watches competitor 2 specifically for price moves
        .deliver(email, name="gate", inputs=["competitor_2"],
                 on_change=ChangeDetector("offer", key="product"))
        .build()
    )

    server = pipeline.serve(period=1)
    server.tick()

    market = pipeline.last_results["market"]
    best = defaultdict(lambda: (None, float("inf")))
    for shop in market.children:
        for offer in shop.iter("offer"):
            product = offer.findtext("product")
            price = parse_number(offer.findtext("price")) or float("inf")
            if price < best[product][1]:
                best[product] = (shop.name, price)
    print("cheapest source per product:")
    for product, (shop, price) in sorted(best.items()):
        print(f"  {product:<16} {shop:<14} EUR {price:.2f}")

    # competitor 2 undercuts on one product -> the analyst gets one alert
    def undercut_first_price(html: str) -> str:
        old_price = html.split('class="price">')[1].split("<")[0]
        return html.replace(old_price, "EUR 9.99", 1)

    web.update("competitor-2.test/prices", undercut_first_price)
    server.tick()
    print(f"\nalerts sent after the price change: {len(email.deliveries)}")
    if email.deliveries:
        print("alert subject:", email.deliveries[-1].subject)


if __name__ == "__main__":
    main()

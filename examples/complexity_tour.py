"""A tour of the theory layer: one query, every formalism of Figure 6.

Evaluates "b-nodes below an a-node" as monadic datalog, Core XPath (linear
and naive), a conjunctive query, a tree automaton, and through the
translations between the formalisms, checking that all agree.  Every
datalog-side evaluation runs through one façade :class:`Session`, which
picks the backend (monadic pipeline, compiled automaton) by program type.

Run with:  python examples/complexity_tour.py
"""

import time

from repro import Session
from repro.automata import leaf_selector_automaton
from repro.cq import classify, query, to_positive_core_xpath, unary_answers
from repro.mdatalog import MonadicProgram, is_tmnf, to_tmnf
from repro.tree import random_tree
from repro.xpath import CoreXPathEvaluator, NaiveXPathEvaluator, translate_to_tmnf

LABELS = ("a", "b", "c")


def timed(label, function, *args):
    start = time.perf_counter()
    result = function(*args)
    print(f"  {label:<42} {time.perf_counter() - start:>8.4f} s")
    return result


def main() -> None:
    document = random_tree(3_000, labels=LABELS, seed=99)
    session = Session()
    print(f"document: {len(document)} nodes, labels {sorted(document.labels())}\n")

    print("the same unary query in every formalism:")
    xpath_answers = timed(
        "Core XPath //a//b (linear evaluator)",
        lambda: CoreXPathEvaluator(document).evaluate("//a//b"),
    )
    timed(
        "Core XPath //a//b (naive 2002-style)",
        lambda: NaiveXPathEvaluator(document).evaluate("//a//b"),
    )

    program = MonadicProgram.parse(
        """
        below(X) :- label_a(X0), child(X0, X).
        below(X) :- below(X0), child(X0, X).
        answer(X) :- below(X), label_b(X).
        """,
        query_predicates=["answer"],
    )
    datalog_answers = timed(
        "monadic datalog (Theorem 2.4 pipeline)",
        lambda: session.select(program, document, "answer"),
    )
    print(f"      program in TMNF already? {is_tmnf(program)}; "
          f"after Theorem 2.7 rewriting: {is_tmnf(to_tmnf(program))}")

    cq = query(free=["X"], labels=[("X", "b"), ("A", "a")], axes=[("child+", "A", "X")])
    cq_answers = timed("conjunctive query (child+)", lambda: unary_answers(cq, document))
    print(f"      dichotomy verdict for its axis set: {classify(cq)}")

    translated = translate_to_tmnf("//a//b", labels=LABELS)
    translated_answers = timed(
        "Core XPath -> TMNF -> evaluate (Theorem 4.6)",
        lambda: session.select(translated, document, "answer"),
    )
    back_to_xpath = to_positive_core_xpath(cq)
    round_trip_answers = timed(
        "CQ -> positive Core XPath -> evaluate",
        lambda: CoreXPathEvaluator(document).evaluate(back_to_xpath),
    )

    automaton = leaf_selector_automaton(LABELS)
    timed("tree automaton (leaf selector), direct run", lambda: automaton.select(document))
    timed(
        "tree automaton compiled to monadic datalog",
        lambda: session.query(automaton, document, labels=LABELS).nodes("selected"),
    )

    reference = {node.preorder_index for node in xpath_answers}
    for name, answers in (
        ("monadic datalog", datalog_answers),
        ("conjunctive query", cq_answers),
        ("translated TMNF", translated_answers),
        ("CQ via XPath", round_trip_answers),
    ):
        assert {node.preorder_index for node in answers} == reference, name
    print(f"\nall formalisms agree: {len(reference)} answer nodes")


if __name__ == "__main__":
    main()

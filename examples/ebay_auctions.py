"""The Figure 5 eBay wrapper, end to end, on the synthetic eBay site.

Run with:  python examples/ebay_auctions.py
"""

from repro import Session
from repro.elog import FIGURE5_TEXT, figure5_program
from repro.web import SimulatedWeb
from repro.web.sites.ebay import ebay_site
from repro.xmlgen import to_xml


def main() -> None:
    # Publish a two-page synthetic eBay result list.
    web = SimulatedWeb()
    web.publish_many(ebay_site(pages=1, items_per_page=12, seed=2004))

    print("The Elog program of Figure 5 (adapted paths, see DESIGN.md):")
    print(FIGURE5_TEXT)

    session = Session()
    result = session.extract(figure5_program(), url="www.ebay.com", fetcher=web)

    print(f"extracted {result.count('record')} records")
    for record in result.instances("record"):
        description = record.find_all("itemdes")
        price = record.find_all("price")
        bids = record.find_all("bids")
        currency = record.find_all("currency")
        print(
            " -",
            description[0].text() if description else "?",
            "|", price[0].text() if price else "?",
            "|", bids[0].text() if bids else "?",
            "| currency:", currency[0].text() if currency else "?",
        )

    print("\nXML output (first lines):")
    xml = to_xml(result.to_xml(root_name="auctions", auxiliary=["tableseq"]))
    print("\n".join(xml.splitlines()[:25]))


if __name__ == "__main__":
    main()

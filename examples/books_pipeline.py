"""Figure 7: a small information pipeline integrating information about books.

Three shops with different layouts are wrapped, their offers integrated,
filtered, sorted by price and delivered — the Transformation Server workflow
of Section 5, declared through the ``Pipeline`` builder of the façade.

Run with:  python examples/books_pipeline.py
"""

from repro import Session
from repro.api import XmlDeliverer
from repro.elog.concepts import parse_number
from repro.web import SimulatedWeb
from repro.web.sites.bookstore import bookstore_site

SHOP_A = """
book(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, title, exact)]))
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
"""
SHOP_B = """
book(S, X)  <- document(_, S), subelem(S, ?.li, X)
title(S, X) <- book(_, S), subelem(S, (?.span, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.span, [(class, price, exact)]), X)
"""
SHOP_C = """
book(S, X)  <- document(_, S), subelem(S, (?.div, [(class, entry, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.div, [(class, t, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.div, [(class, p, exact)]), X)
"""


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(bookstore_site(count=8, seed=7))

    session = Session()
    pipeline = (
        session.pipeline("books")
        .wrapper("shop_a", SHOP_A, web, "books-a.test/bestsellers")
        .wrapper("shop_b", SHOP_B, web, "books-b.test/chart")
        .wrapper("shop_c", SHOP_C, web, "books-c.test/picks")
        .integrate("integrate", inputs=["shop_a", "shop_b", "shop_c"], root_name="allbooks")
        .filter(
            "affordable", "book",
            lambda book: (parse_number(book.findtext("price")) or 999) < 30,
            root_name="affordable",
        )
        .sort("by_price", "book", "price", root_name="offers")
        .deliver(XmlDeliverer("deliver", recipient="portal"))
        .build()
    )

    results = pipeline.run()
    offers = results["by_price"].find_all("book")
    print(f"integrated {len(results['integrate'].children)} source documents, "
          f"{len(offers)} affordable offers after filtering:\n")
    for offer in offers:
        print(f"  {offer.findtext('price'):>12}  {offer.findtext('title')}")

    delivery = pipeline.component("deliver").last_delivery()
    print(f"\ndelivered via {delivery.channel!r} to {delivery.recipient!r}, "
          f"{len(delivery.body.splitlines())} XML lines")


if __name__ == "__main__":
    main()

"""Section 6.3 — press clipping: financial news aggregated with stock quotes.

Two press sites and a quotes page are wrapped, integrated, renamed into the
NITF element vocabulary, and delivered as XML for a downstream content
system — declared end to end through the façade's pipeline builder.

Run with:  python examples/press_clipping.py
"""

from repro import Session
from repro.api import XmlDeliverer
from repro.web import SimulatedWeb
from repro.web.sites.news import press_clipping_site

DAILY_WRAPPER = """
article(S, X)  <- document(_, S), subelem(S, (?.div, [(class, article, exact)]), X)
headline(S, X) <- article(_, S), subelem(S, (?.h2, [(class, headline, exact)]), X)
date(S, X)     <- article(_, S), subelem(S, (?.span, [(class, date, exact)]), X)
body(S, X)     <- article(_, S), subelem(S, (?.p, [(class, body, exact)]), X)
"""
WIRE_WRAPPER = """
article(S, X)  <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, headline, exact)]))
headline(S, X) <- article(_, S), subelem(S, ?.a, X)
date(S, X)     <- article(_, S), subelem(S, (?.td, [(class, date, exact)]), X)
"""
QUOTES_WRAPPER = """
quote(S, X)   <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, company, exact)]))
company(S, X) <- quote(_, S), subelem(S, (?.td, [(class, company, exact)]), X)
price(S, X)   <- quote(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
change(S, X)  <- quote(_, S), subelem(S, (?.td, [(class, change, exact)]), X)
"""

# Pattern names -> NITF-ish element names (NewsML/NITF, as in the paper).
NITF_MAPPING = {
    "clipping": "nitf",
    "article": "block",
    "headline": "hl1",
    "body": "p",
    "date": "dateline",
}


def main() -> None:
    web = SimulatedWeb()
    web.publish_many(press_clipping_site(count=6, seed=12))

    session = Session()
    pipeline = (
        session.pipeline("press-clipping")
        .wrapper("daily", DAILY_WRAPPER, web, "financial-daily.test/news", root_name="news")
        .wrapper("wire", WIRE_WRAPPER, web, "market-wire.test/stories", root_name="news")
        .wrapper("quotes", QUOTES_WRAPPER, web, "exchange.test/quotes", root_name="quotes")
        .integrate("merge", inputs=["daily", "wire", "quotes"], root_name="clipping")
        .rename("nitf", NITF_MAPPING)
        .deliver(XmlDeliverer("deliver", recipient="content-management-system"))
        .build()
    )

    results = pipeline.run()
    nitf = results["nitf"]
    blocks = list(nitf.iter("block"))
    quotes = list(nitf.iter("quote"))
    print(f"aggregated {len(blocks)} news blocks and {len(quotes)} quotes into NITF")
    for block in blocks[:5]:
        print("  headline:", block.findtext("hl1"))
    print("\nquotes:")
    for quote in quotes:
        print(f"  {quote.findtext('company'):<16} {quote.findtext('price'):>8}  {quote.findtext('change')}")

    delivery = pipeline.component("deliver").last_delivery()
    print(f"\ndelivered {len(delivery.body)} characters of NITF XML to {delivery.recipient!r}")


if __name__ == "__main__":
    main()

"""Section 6.2 — flight schedule monitoring with SMS-on-change delivery.

The departures board of a simulated airport is wrapped periodically; the
subscriber is notified by (simulated) SMS only when the status of one of the
watched flights changes between consecutive requests.  The change gate is
declared directly on the pipeline's ``deliver`` stage.

Run with:  python examples/flight_monitor.py
"""

from repro import Session
from repro.api import ChangeDetector, SmsDeliverer
from repro.web import SimulatedWeb
from repro.web.sites.flights import advance_statuses, departures_page, generate_flights

BOARD_WRAPPER = """
flight(S, X) <- document(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, flight, exact)]))
number(S, X) <- flight(_, S), subelem(S, (?.td, [(class, flight, exact)]), X)
dest(S, X)   <- flight(_, S), subelem(S, (?.td, [(class, dest, exact)]), X)
status(S, X) <- flight(_, S), subelem(S, (?.td, [(class, status, exact)]), X)
"""


def main() -> None:
    flights = generate_flights(8, seed=14, airport="Vienna")
    watched = flights[0].number
    web = SimulatedWeb()
    url = "vienna-airport.test/departures"
    web.publish(url, departures_page("Vienna", flights))

    sms = SmsDeliverer("sms", "+43 660 0000", summarise=lambda doc: doc.full_text())

    session = Session()
    pipeline = (
        session.pipeline("flight-monitor")
        .wrapper("board", BOARD_WRAPPER, web, url, root_name="departures")
        .filter("watched", "flight",
                lambda f: f.findtext("number") == watched, root_name="watchlist")
        .deliver(
            sms,
            name="gate",
            on_change=ChangeDetector("flight", key="number"),
            message=lambda report: "flight update: " + ", ".join(
                f"{f.findtext('number')} now {f.findtext('status')}"
                for f in report.changed + report.added
            ),
        )
        .build()
    )

    server = pipeline.serve(period=1)

    print(f"subscribed to flight {watched}")
    server.tick()                      # baseline snapshot — no SMS
    server.tick()                      # unchanged — no SMS
    print(f"after 2 polls without change: {len(sms.deliveries)} SMS sent")

    # the airport delays the watched flight
    web.publish(url, departures_page("Vienna", advance_statuses(flights, {watched: "delayed"})))
    server.tick()
    web.publish(url, departures_page("Vienna", advance_statuses(flights, {watched: "departed"})))
    server.tick()

    print(f"after two status changes: {len(sms.deliveries)} SMS sent")
    for delivery in sms.deliveries:
        print(f"  SMS to {delivery.recipient}: {delivery.body}")


if __name__ == "__main__":
    main()
